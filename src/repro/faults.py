"""Deterministic, seed-driven fault injection for the runtime.

The paper's premise is surviving faults; this module makes our *own*
runtime prove it.  A :class:`FaultPlan` — loaded from TOML or JSON —
declares faults to inject at named seams threaded through the production
code (``repro.faults.fire(site, ...)`` calls inside clients, workers and
journals).  A :class:`FaultInjector` built from the plan is installed
process-wide; each ``fire`` checks the plan's rules and, when one
matches, raises a transient error, sleeps, kills the process, damages a
journal tail, skews a registered clock, or asks the call site to
duplicate the operation.

Everything is deterministic: probabilistic rules draw from a generator
seeded by the plan, counters (``times`` / ``after``) are exact, and the
injected errors subclass :class:`ConnectionError` so they exercise the
*real* transport-failure recovery paths.  When no injector is installed
— every production run — ``fire`` is a single ``None`` check.

Plan format (TOML; JSON mirrors the same shape)::

    [faults]
    seed = 7

    [[faults.rules]]
    site = "service.client.claim"   # fnmatch glob over seam names
    action = "error"                # raise InjectedFault
    times = 3                       # fire at most 3 times (0 = unlimited)
    after = 2                       # skip the first 2 matching calls
    probability = 1.0               # else Bernoulli from the plan seed

    [[faults.rules]]
    site = "journal.append"
    action = "truncate_tail"        # damage the journal behind the writer
    nbytes = 4

Actions: ``error`` (raise :class:`InjectedFault`, optional ``message``),
``delay`` (sleep ``delay_seconds``), ``duplicate`` (the seam re-executes
an idempotent operation), ``kill`` (``os._exit(137)`` — a crash, not a
shutdown), ``truncate_tail`` / ``bit_flip`` (damage the file named by the
seam's ``path`` info or the rule's ``path``), ``skew`` (advance the
registered :class:`SkewedClock` by ``skew_seconds``).

Known seams: ``service.client.<op>``, ``service.worker.claim`` /
``.execute`` / ``.heartbeat`` / ``.ack``, ``gateway.client.connect`` /
``gateway.client.<op>``, ``journal.append``.
"""

from __future__ import annotations

import difflib
import fnmatch
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.exceptions import FaultInjectionError, InjectedFault

__all__ = [
    "ACTIONS",
    "ENV_FAULT_PLAN",
    "FaultPlan",
    "FaultRule",
    "FaultInjector",
    "SkewedClock",
    "configure_from_env",
    "current",
    "fire",
    "flip_bit",
    "install",
    "truncate_tail",
    "uninstall",
]

#: Environment variable naming a plan file; subprocess workers read it at
#: startup (``configure_from_env``) so one plan governs a whole fleet.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

ACTIONS = (
    "error",
    "delay",
    "duplicate",
    "kill",
    "truncate_tail",
    "bit_flip",
    "skew",
)

_RULE_KEYS = {
    "site",
    "action",
    "times",
    "after",
    "probability",
    "message",
    "delay_seconds",
    "path",
    "nbytes",
    "bit_offset",
    "skew_seconds",
}


def _check_keys(mapping: Mapping[str, Any], known: set, context: str) -> None:
    unknown = sorted(set(mapping) - known)
    if not unknown:
        return
    hints = []
    for key in unknown:
        close = difflib.get_close_matches(key, sorted(known), n=1)
        hints.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
    raise FaultInjectionError(
        f"unknown key(s) in {context}: {', '.join(hints)}"
    )


# -- file damage helpers (also used by chaos scripts directly) -----------


def truncate_tail(path, nbytes: int) -> int:
    """Cut *nbytes* off the end of *path*, simulating a torn write.

    Returns the new size.  Truncating more bytes than the file holds
    empties it.
    """
    path = Path(path)
    size = path.stat().st_size
    new_size = max(0, size - int(nbytes))
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
        handle.flush()
        os.fsync(handle.fileno())
    return new_size


def flip_bit(path, bit_offset: int) -> None:
    """Flip one bit of *path* in place, simulating silent media corruption.

    *bit_offset* counts from the start of the file; negative offsets count
    from the end (``-1`` = last bit).
    """
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise FaultInjectionError(f"cannot flip a bit of empty file {path}")
    total_bits = size * 8
    offset = int(bit_offset)
    if offset < 0:
        offset += total_bits
    if not 0 <= offset < total_bits:
        raise FaultInjectionError(
            f"bit offset {bit_offset} out of range for {size}-byte file {path}"
        )
    byte_index, bit_index = divmod(offset, 8)
    with open(path, "r+b") as handle:
        handle.seek(byte_index)
        byte = handle.read(1)[0]
        handle.seek(byte_index)
        handle.write(bytes([byte ^ (1 << (7 - bit_index))]))
        handle.flush()
        os.fsync(handle.fileno())


class SkewedClock:
    """A monotonic clock with an injectable offset.

    Drop-in for the coordinator's ``clock`` parameter: calling it returns
    ``base() + skew``.  Fault rules with ``action = "skew"`` advance the
    clock registered on the installed injector, simulating clock jumps
    (e.g. an NTP step) between protocol calls.
    """

    def __init__(self, base: Callable[[], float] = time.monotonic, skew: float = 0.0):
        self._base = base
        self._skew = float(skew)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._base() + self._skew

    def advance(self, seconds: float) -> None:
        with self._lock:
            self._skew += float(seconds)

    @property
    def skew(self) -> float:
        with self._lock:
            return self._skew


# -- plan schema ---------------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: where, what, and how often."""

    site: str
    action: str
    times: int = 1
    after: int = 0
    probability: float = 1.0
    message: str = "injected fault"
    delay_seconds: float = 0.05
    path: Optional[str] = None
    nbytes: int = 4
    bit_offset: int = -1
    skew_seconds: float = 0.0

    def __post_init__(self):
        if not self.site:
            raise FaultInjectionError("fault rule needs a non-empty site")
        if self.action not in ACTIONS:
            close = difflib.get_close_matches(self.action, ACTIONS, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise FaultInjectionError(
                f"unknown fault action {self.action!r}{hint}; "
                f"known: {', '.join(ACTIONS)}"
            )
        if self.times < 0:
            raise FaultInjectionError(
                f"times must be >= 0 (0 = unlimited), got {self.times}"
            )
        if self.after < 0:
            raise FaultInjectionError(f"after must be >= 0, got {self.after}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultInjectionError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.delay_seconds < 0:
            raise FaultInjectionError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    def to_mapping(self) -> Dict[str, Any]:
        mapping: Dict[str, Any] = {"site": self.site, "action": self.action}
        defaults = FaultRule(site=self.site, action=self.action)
        for key in sorted(_RULE_KEYS - {"site", "action"}):
            value = getattr(self, key)
            if value != getattr(defaults, key):
                mapping[key] = value
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "FaultRule":
        _check_keys(mapping, _RULE_KEYS, "[[faults.rules]]")
        if "site" not in mapping or "action" not in mapping:
            raise FaultInjectionError(
                "every fault rule needs 'site' and 'action'"
            )
        kwargs = dict(mapping)
        for key in ("times", "after", "nbytes", "bit_offset"):
            if key in kwargs:
                kwargs[key] = int(kwargs[key])
        for key in ("probability", "delay_seconds", "skew_seconds"):
            if key in kwargs:
                kwargs[key] = float(kwargs[key])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seedable collection of :class:`FaultRule` entries."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    def to_mapping(self) -> Dict[str, Any]:
        mapping: Dict[str, Any] = {}
        if self.seed:
            mapping["seed"] = self.seed
        mapping["rules"] = [rule.to_mapping() for rule in self.rules]
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "FaultPlan":
        _check_keys(mapping, {"seed", "rules"}, "[faults]")
        rules_raw = mapping.get("rules", [])
        if not isinstance(rules_raw, Sequence) or isinstance(rules_raw, (str, bytes)):
            raise FaultInjectionError("[faults].rules must be an array of tables")
        rules = tuple(FaultRule.from_mapping(rule) for rule in rules_raw)
        return cls(rules=rules, seed=int(mapping.get("seed", 0)))

    @classmethod
    def loads(cls, text: str, format: str = "toml") -> "FaultPlan":
        if format == "toml":
            try:
                import tomllib
            except ModuleNotFoundError:  # pragma: no cover - Python 3.10
                try:
                    import tomli as tomllib  # type: ignore[no-redef]
                except ModuleNotFoundError:
                    raise FaultInjectionError(
                        "reading TOML fault plans needs Python 3.11+ "
                        "(tomllib) or the tomli package; JSON plans work "
                        "everywhere"
                    ) from None
            document = tomllib.loads(text)
        elif format == "json":
            document = json.loads(text)
        else:
            raise FaultInjectionError(
                f"unknown fault plan format {format!r} (toml or json)"
            )
        if not isinstance(document, Mapping):
            raise FaultInjectionError("fault plan document must be a table")
        # Accept both a bare plan and a spec-style {"faults": {...}} wrapper.
        body = document.get("faults", document)
        if not isinstance(body, Mapping):
            raise FaultInjectionError("[faults] must be a table")
        return cls.from_mapping(body)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        path = Path(path)
        format = "json" if path.suffix.lower() == ".json" else "toml"
        return cls.loads(path.read_text(encoding="utf-8"), format)


# -- the injector --------------------------------------------------------


class _RuleState:
    """Mutable firing counters for one rule (the plan itself is frozen)."""

    __slots__ = ("rule", "seen", "fired")

    def __init__(self, rule: FaultRule):
        self.rule = rule
        self.seen = 0
        self.fired = 0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at runtime seams.

    Thread-safe: rule counters and the probability generator are guarded
    by a lock, so concurrent workers hitting the same seam see exact
    ``times`` / ``after`` semantics.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._states = [_RuleState(rule) for rule in plan.rules]
        self._rng = np.random.default_rng(plan.seed)
        self._lock = threading.Lock()
        self._clock: Optional[SkewedClock] = None
        self.fired: Dict[str, int] = {}

    def register_clock(self, clock: SkewedClock) -> None:
        """Name the clock that ``skew`` rules advance."""
        self._clock = clock

    def fire(self, site: str, **info: Any) -> Optional[str]:
        """Evaluate *site* against the plan; inject the first matching rule.

        Returns the action name when the seam itself must cooperate
        (``duplicate``), ``None`` when nothing fired.  ``error`` raises
        :class:`InjectedFault`; the file/clock/process actions happen as
        side effects.
        """
        matched: Optional[FaultRule] = None
        with self._lock:
            for state in self._states:
                rule = state.rule
                if not fnmatch.fnmatchcase(site, rule.site):
                    continue
                state.seen += 1
                if state.seen <= rule.after:
                    continue
                if rule.times and state.fired >= rule.times:
                    continue
                if rule.probability < 1.0 and float(self._rng.random()) >= rule.probability:
                    continue
                state.fired += 1
                self.fired[site] = self.fired.get(site, 0) + 1
                matched = rule
                break
        if matched is None:
            return None
        return self._apply(matched, site, info)

    def _apply(
        self, rule: FaultRule, site: str, info: Mapping[str, Any]
    ) -> Optional[str]:
        if rule.action == "error":
            raise InjectedFault(f"{rule.message} (site {site})")
        if rule.action == "delay":
            time.sleep(rule.delay_seconds)
            return None
        if rule.action == "duplicate":
            return "duplicate"
        if rule.action == "kill":
            os._exit(137)
        if rule.action in ("truncate_tail", "bit_flip"):
            path = rule.path or info.get("path")
            if not path:
                raise FaultInjectionError(
                    f"rule at site {site!r} needs a path (rule 'path' or "
                    "seam info)"
                )
            if rule.action == "truncate_tail":
                truncate_tail(path, rule.nbytes)
            else:
                flip_bit(path, rule.bit_offset)
            return None
        if rule.action == "skew":
            if self._clock is not None:
                self._clock.advance(rule.skew_seconds)
            return None
        raise AssertionError(rule.action)  # pragma: no cover

    def summary(self) -> Dict[str, Any]:
        """Firing counts per rule, for chaos-run logs."""
        with self._lock:
            return {
                "seed": self.plan.seed,
                "rules": [
                    {
                        "site": state.rule.site,
                        "action": state.rule.action,
                        "seen": state.seen,
                        "fired": state.fired,
                    }
                    for state in self._states
                ],
            }


# -- process-wide installation -------------------------------------------

_INJECTOR: Optional[FaultInjector] = None


def install(plan_or_injector) -> FaultInjector:
    """Install a plan (or prebuilt injector) process-wide; returns it."""
    global _INJECTOR
    if isinstance(plan_or_injector, FaultInjector):
        injector = plan_or_injector
    elif isinstance(plan_or_injector, FaultPlan):
        injector = FaultInjector(plan_or_injector)
    else:
        raise FaultInjectionError(
            "install() takes a FaultPlan or FaultInjector, got "
            f"{type(plan_or_injector).__name__}"
        )
    _INJECTOR = injector
    return injector


def uninstall() -> None:
    global _INJECTOR
    _INJECTOR = None


def current() -> Optional[FaultInjector]:
    return _INJECTOR


def fire(site: str, **info: Any) -> Optional[str]:
    """Seam entry point: a no-op unless an injector is installed."""
    injector = _INJECTOR
    if injector is None:
        return None
    return injector.fire(site, **info)


def configure_from_env() -> Optional[FaultInjector]:
    """Install the plan named by ``REPRO_FAULT_PLAN``, if any.

    Called by the CLI entry points at startup so subprocess workers in a
    chaos run pick up the same plan as the parent.
    """
    path = os.environ.get(ENV_FAULT_PLAN)
    if not path:
        return None
    return install(FaultPlan.load(path))
