"""Streaming (observation-by-observation) anomaly detection.

:class:`StreamingDetector` wraps a fitted :class:`~repro.mspc.model.MSPCMonitor`
and applies the consecutive-violation rule online, one observation at a time,
which is how a monitor deployed next to a historian would run.  Batch-mode
monitoring of a full run is available through
:meth:`repro.mspc.model.MSPCMonitor.monitor`; both paths implement the same
rule and produce identical detections.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.anomaly.events import AnomalyEvent
from repro.common.exceptions import NotFittedError
from repro.mspc.model import MSPCMonitor

__all__ = ["StreamingDetector"]


class StreamingDetector:
    """Online application of the MSPC detection rule.

    Parameters
    ----------
    monitor:
        A fitted :class:`MSPCMonitor`.
    """

    def __init__(self, monitor: MSPCMonitor):
        if not monitor.is_fitted:
            raise NotFittedError("the MSPCMonitor must be fitted before streaming")
        self.monitor = monitor
        self.reset()

    def reset(self) -> None:
        """Forget all streamed observations and detections.

        A reset detector is indistinguishable from a freshly constructed
        one: re-feeding the same observations reproduces the same events
        and history (pinned in the test suite).
        """
        self._index = 0
        self._consecutive_d = 0
        self._consecutive_q = 0
        self._events: List[AnomalyEvent] = []
        self._history_d: List[float] = []
        self._history_q: List[float] = []
        self._times: List[float] = []
        self._invalidate_caches()

    def _invalidate_caches(self) -> None:
        self._events_cache: Optional[Tuple[AnomalyEvent, ...]] = None
        self._history_cache: Optional[Dict[str, np.ndarray]] = None

    @property
    def events(self) -> Tuple[AnomalyEvent, ...]:
        """All detections fired so far (cached; do not mutate).

        The tuple is rebuilt only after new observations arrive, so hot
        loops polling ``detector.events`` between observations no longer
        copy the event list on every access.
        """
        if self._events_cache is None:
            self._events_cache = tuple(self._events)
        return self._events_cache

    @property
    def first_event(self) -> Optional[AnomalyEvent]:
        """The first detection, or ``None``."""
        return self._events[0] if self._events else None

    @property
    def history(self) -> Dict[str, np.ndarray]:
        """Streamed statistic values and timestamps (cached; treat as
        read-only — the same arrays are returned until new observations
        arrive)."""
        if self._history_cache is None:
            self._history_cache = {
                "D": np.array(self._history_d),
                "Q": np.array(self._history_q),
                "time": np.array(self._times),
            }
        return self._history_cache

    def observe(self, observation: np.ndarray, time_hours: Optional[float] = None) -> Optional[AnomalyEvent]:
        """Process one observation; return an event if the rule fires on it."""
        self._invalidate_caches()
        config = self.monitor.config
        t2_values, spe_values = self.monitor.statistics(np.asarray(observation, dtype=float))
        t2_value = float(t2_values[0])
        spe_value = float(spe_values[0])
        time_value = float(time_hours) if time_hours is not None else float(self._index)

        d_limit = self.monitor.t2_limits.at(config.detection_confidence)
        q_limit = self.monitor.spe_limits.at(config.detection_confidence)

        self._consecutive_d = self._consecutive_d + 1 if t2_value > d_limit else 0
        self._consecutive_q = self._consecutive_q + 1 if spe_value > q_limit else 0

        event: Optional[AnomalyEvent] = None
        d_fired = self._consecutive_d == config.consecutive_violations
        q_fired = self._consecutive_q == config.consecutive_violations
        if d_fired or q_fired:
            if d_fired and q_fired:
                chart, value, limit = "D+Q", t2_value, d_limit
            elif d_fired:
                chart, value, limit = "D", t2_value, d_limit
            else:
                chart, value, limit = "Q", spe_value, q_limit
            event = AnomalyEvent(
                detection_index=self._index,
                detection_time_hours=time_value,
                chart=chart,
                statistic_value=value,
                limit=limit,
            )
            self._events.append(event)

        self._history_d.append(t2_value)
        self._history_q.append(spe_value)
        self._times.append(time_value)
        self._index += 1
        return event

    def observe_many(self, observations: np.ndarray, times: Optional[np.ndarray] = None) -> List[AnomalyEvent]:
        """Stream a batch of observations; return the events fired.

        The bulk-feed API: equivalent to calling :meth:`observe` on every
        row of ``observations`` (a single 1-D observation is accepted too)
        with the matching entry of ``times`` — a convenience for replaying
        a recorded window through the online rule, e.g. to compare the
        streaming detections with :meth:`MSPCMonitor.monitor` on the same
        data.  Only the observations that *fired* the rule produce events;
        the per-observation statistics are all recorded in :attr:`history`.
        """
        observations = np.asarray(observations, dtype=float)
        if observations.ndim == 1:
            observations = observations.reshape(1, -1)
        events: List[AnomalyEvent] = []
        for row_index, row in enumerate(observations):
            time_value = None if times is None else float(np.asarray(times).ravel()[row_index])
            event = self.observe(row, time_value)
            if event is not None:
                events.append(event)
        return events

    #: Alias of :meth:`observe_many`, so the bulk-feed API is reachable
    #: under the conventional "feed" name as well (see the README's live
    #: monitoring section).
    feed_many = observe_many
