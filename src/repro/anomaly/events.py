"""Anomaly event records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["AnomalyEvent"]


@dataclass(frozen=True)
class AnomalyEvent:
    """A detected anomalous event.

    Attributes
    ----------
    detection_index:
        Index of the observation at which the detection rule fired.
    detection_time_hours:
        Timestamp of that observation, in simulation hours.
    chart:
        Name of the chart that fired first (``"D"``, ``"Q"`` or ``"D+Q"``
        when both fired at the same observation).
    statistic_value:
        Value of the firing statistic at the detection observation.
    limit:
        Control limit that was exceeded.
    metadata:
        Free-form extra information (scenario name, run seed, ...).
    """

    detection_index: int
    detection_time_hours: float
    chart: str
    statistic_value: float
    limit: float
    metadata: Dict[str, object] = field(default_factory=dict)

    def run_length(self, anomaly_start_hour: float) -> Optional[float]:
        """Time from anomaly onset to this detection (None for false alarms)."""
        elapsed = self.detection_time_hours - float(anomaly_start_hour)
        return elapsed if elapsed >= 0 else None
