"""Dual-level (controller vs. process) anomaly diagnosis.

The paper's central observation (Section V-A) is that controller-level data
alone cannot tell a disturbance from an integrity attack: IDV(6) and an attack
that closes the A feed valve look identical to the controllers.  Monitoring
the *process-level* view as well resolves the ambiguity: under a disturbance
the two views keep agreeing, whereas under an attack the injected values make
the views diverge — the controller-level oMEDA implicates the forged variable
while the process-level oMEDA implicates the variable the attacker is really
manipulating.

:class:`DualLevelAnalyzer` formalizes that comparison: it fits one MSPC model
per view, detects anomalies on both, computes the oMEDA diagnosis of each view
and classifies the event from (a) the similarity of the two diagnoses and
(b) how clearly a variable dominates each of them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.common.config import MSPCConfig
from repro.common.exceptions import DataShapeError, NotFittedError
from repro.datasets.dataset import ProcessDataset
from repro.mspc.model import MonitoringResult, MSPCMonitor, OmedaResult

__all__ = [
    "AnomalyClass",
    "DiagnosisSummary",
    "DualLevelDiagnosis",
    "DualLevelAnalyzer",
    "omeda_similarity",
    "view_divergence",
]


class AnomalyClass(enum.Enum):
    """Classification of a detected anomaly."""

    NORMAL = "normal"
    DISTURBANCE = "process disturbance"
    INTEGRITY_ATTACK = "integrity attack"
    UNCLEAR = "unclear (possible DoS attack)"


def omeda_similarity(first: OmedaResult, second: OmedaResult) -> float:
    """Cosine similarity between two oMEDA vectors over the same variables."""
    if first.variable_names != second.variable_names:
        raise DataShapeError("oMEDA results cover different variable sets")
    a = np.asarray(first.contributions, dtype=float)
    b = np.asarray(second.contributions, dtype=float)
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm == 0:
        return 0.0
    return float(np.dot(a, b) / norm)


def view_divergence(
    controller_data: ProcessDataset, process_data: ProcessDataset
) -> Dict[str, float]:
    """Maximum absolute difference between the two views, per variable.

    In an attack-free run the controller-level and process-level recordings
    are identical and every entry is zero; under an attack the tampered
    variables diverge.  This is a forensic helper — a deployed monitor does
    not get to assume it knows which view is trustworthy — but it is useful
    for validating scenarios and for the ablation benchmarks.
    """
    if controller_data.variable_names != process_data.variable_names:
        raise DataShapeError("the two views cover different variable sets")
    length = min(controller_data.n_observations, process_data.n_observations)
    difference = np.abs(
        controller_data.values[:length] - process_data.values[:length]
    ).max(axis=0)
    return {
        name: float(value)
        for name, value in zip(controller_data.variable_names, difference)
    }


class _VerdictMixin:
    """The API shared by full diagnoses and their compact summaries.

    Aggregation code accepts either interchangeably, so the shared members
    live here — one body, two carriers.
    """

    detection_time_hours: Optional[float]
    controller_omeda: Optional[OmedaResult]
    process_omeda: Optional[OmedaResult]

    @property
    def detected(self) -> bool:
        """Whether either view detected the anomaly."""
        return self.detection_time_hours is not None

    def implicated_variables(self, count: int = 3) -> Dict[str, Tuple[str, ...]]:
        """Top implicated variables per view."""
        implicated: Dict[str, Tuple[str, ...]] = {}
        if self.controller_omeda is not None:
            implicated["controller"] = self.controller_omeda.top_variables(count)
        if self.process_omeda is not None:
            implicated["process"] = self.process_omeda.top_variables(count)
        return implicated


@dataclass
class DualLevelDiagnosis(_VerdictMixin):
    """Joint diagnosis of one run from its two data views.

    Attributes
    ----------
    controller_result / process_result:
        Monitoring results (charts and detections) per view.
    controller_omeda / process_omeda:
        oMEDA diagnoses per view (``None`` when nothing exceeded the limits).
    similarity:
        Cosine similarity between the two oMEDA vectors (``None`` when either
        diagnosis is unavailable).
    classification:
        The resulting :class:`AnomalyClass`.
    detection_time_hours:
        Earliest detection time across the two views (``None`` if undetected).
    """

    controller_result: MonitoringResult
    process_result: MonitoringResult
    controller_omeda: Optional[OmedaResult]
    process_omeda: Optional[OmedaResult]
    similarity: Optional[float]
    classification: AnomalyClass
    detection_time_hours: Optional[float]
    metadata: Dict[str, object] = field(default_factory=dict)

    def summarize(self) -> "DiagnosisSummary":
        """Strip the per-observation chart arrays, keeping the verdict.

        The summary carries everything the campaign reducers consume —
        classification, detection time, oMEDA vectors, similarity and the
        false-alarm metadata — in a few hundred bytes, so the streaming
        analysis stage can ship it across process boundaries and discard
        the full per-run monitoring charts immediately.
        """
        return DiagnosisSummary(
            controller_omeda=self.controller_omeda,
            process_omeda=self.process_omeda,
            similarity=self.similarity,
            classification=self.classification,
            detection_time_hours=self.detection_time_hours,
            metadata=dict(self.metadata),
        )


@dataclass
class DiagnosisSummary(_VerdictMixin):
    """The reducer-facing slice of a :class:`DualLevelDiagnosis`.

    Shares attribute names with :class:`DualLevelDiagnosis` (minus the
    per-observation ``controller_result`` / ``process_result`` charts), so
    aggregation code accepts either interchangeably.
    """

    controller_omeda: Optional[OmedaResult]
    process_omeda: Optional[OmedaResult]
    similarity: Optional[float]
    classification: AnomalyClass
    detection_time_hours: Optional[float]
    metadata: Dict[str, object] = field(default_factory=dict)

    def summarize(self) -> "DiagnosisSummary":
        """A summary is already its own summary (idempotent)."""
        return self

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON-safe mapping of this verdict.

        Every key is always present (absent diagnoses serialize as
        ``None``), so two summaries of the same verdict produce
        byte-identical JSON — the streaming gateway pins that stability.
        """
        return {
            "controller_omeda": (
                None
                if self.controller_omeda is None
                else self.controller_omeda.to_mapping()
            ),
            "process_omeda": (
                None if self.process_omeda is None else self.process_omeda.to_mapping()
            ),
            "similarity": (
                None if self.similarity is None else float(self.similarity)
            ),
            "classification": self.classification.value,
            "detection_time_hours": (
                None
                if self.detection_time_hours is None
                else float(self.detection_time_hours)
            ),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "DiagnosisSummary":
        """Rebuild a verdict from its :meth:`to_mapping` form."""
        controller_omeda = mapping.get("controller_omeda")
        process_omeda = mapping.get("process_omeda")
        similarity = mapping.get("similarity")
        detection_time = mapping.get("detection_time_hours")
        return cls(
            controller_omeda=(
                None
                if controller_omeda is None
                else OmedaResult.from_mapping(controller_omeda)
            ),
            process_omeda=(
                None if process_omeda is None else OmedaResult.from_mapping(process_omeda)
            ),
            similarity=None if similarity is None else float(similarity),
            classification=AnomalyClass(mapping["classification"]),
            detection_time_hours=(
                None if detection_time is None else float(detection_time)
            ),
            metadata=dict(mapping.get("metadata", {})),
        )


class DualLevelAnalyzer:
    """Fits and applies one MSPC model per data view.

    Parameters
    ----------
    config:
        MSPC configuration shared by both views.
    similarity_threshold:
        Cosine-similarity above which the two diagnoses are considered to
        agree (pointing to a genuine process disturbance).
    dominance_threshold:
        Minimum dominance ratio (|largest| / |second largest| oMEDA bar) for a
        diagnosis to be considered "clear"; if neither view is clear the event
        is classified as :attr:`AnomalyClass.UNCLEAR`.
    """

    def __init__(
        self,
        config: Optional[MSPCConfig] = None,
        similarity_threshold: float = 0.85,
        dominance_threshold: float = 2.0,
        divergence_threshold: float = 0.5,
        significance_fraction: float = 0.02,
    ):
        self.config = config or MSPCConfig()
        self.similarity_threshold = float(similarity_threshold)
        self.dominance_threshold = float(dominance_threshold)
        self.divergence_threshold = float(divergence_threshold)
        self.significance_fraction = float(significance_fraction)
        self.controller_monitor = MSPCMonitor(self.config)
        self.process_monitor = MSPCMonitor(self.config)

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether both per-view monitors are calibrated."""
        return self.controller_monitor.is_fitted and self.process_monitor.is_fitted

    def fit(
        self,
        controller_calibration: ProcessDataset,
        process_calibration: ProcessDataset,
    ) -> "DualLevelAnalyzer":
        """Calibrate both monitors on attack-free normal-operation data."""
        self.controller_monitor.fit(controller_calibration)
        self.process_monitor.fit(process_calibration)
        return self

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("DualLevelAnalyzer must be fitted before analysis")

    # ------------------------------------------------------------------
    def analyze(
        self,
        controller_data: ProcessDataset,
        process_data: ProcessDataset,
        diagnosis_group_size: int = 3,
        anomaly_start_hour: Optional[float] = None,
    ) -> DualLevelDiagnosis:
        """Detect, diagnose and classify one run from its two views.

        ``anomaly_start_hour`` (when known, e.g. in controlled experiments)
        restricts detection and diagnosis to observations at or after that
        time, so that sporadic false alarms during the normal stretch of the
        run do not contaminate the run-length statistics or the oMEDA group.
        """
        self._require_fitted()
        controller_result = self.controller_monitor.monitor(controller_data)
        process_result = self.process_monitor.monitor(process_data)
        return self.assemble(
            controller_data,
            process_data,
            controller_result,
            process_result,
            diagnosis_group_size=diagnosis_group_size,
            anomaly_start_hour=anomaly_start_hour,
        )

    def assemble(
        self,
        controller_data: ProcessDataset,
        process_data: ProcessDataset,
        controller_result: MonitoringResult,
        process_result: MonitoringResult,
        diagnosis_group_size: int = 3,
        anomaly_start_hour: Optional[float] = None,
    ) -> DualLevelDiagnosis:
        """Diagnose and classify from already-monitored charts.

        The second half of :meth:`analyze`, split out so callers that
        already hold per-view :class:`MonitoringResult` charts — notably the
        live monitoring subsystem, which accumulates the statistic values
        sample by sample — produce diagnoses through exactly the same code
        path as the batch API.
        """
        self._require_fitted()
        controller_omeda = self._diagnose_if_possible(
            self.controller_monitor,
            controller_data,
            controller_result,
            diagnosis_group_size,
            anomaly_start_hour,
        )
        process_omeda = self._diagnose_if_possible(
            self.process_monitor,
            process_data,
            process_result,
            diagnosis_group_size,
            anomaly_start_hour,
        )

        similarity: Optional[float] = None
        if controller_omeda is not None and process_omeda is not None:
            similarity = omeda_similarity(controller_omeda, process_omeda)

        detection_times = [
            result.detection_time_after(anomaly_start_hour)
            for result in (controller_result, process_result)
        ]
        detection_times = [time for time in detection_times if time is not None]
        detection_time = min(detection_times) if detection_times else None

        metadata: Dict[str, object] = {}
        if anomaly_start_hour is not None:
            false_alarms = [
                result.false_alarm_time(anomaly_start_hour)
                for result in (controller_result, process_result)
            ]
            false_alarms = [time for time in false_alarms if time is not None]
            metadata["false_alarm_time_hours"] = (
                min(false_alarms) if false_alarms else None
            )

        classification = self._classify(
            detection_time, controller_omeda, process_omeda, similarity
        )
        return DualLevelDiagnosis(
            controller_result=controller_result,
            process_result=process_result,
            controller_omeda=controller_omeda,
            process_omeda=process_omeda,
            similarity=similarity,
            classification=classification,
            detection_time_hours=detection_time,
            metadata=metadata,
        )

    @staticmethod
    def _diagnose_if_possible(
        monitor: MSPCMonitor,
        data: ProcessDataset,
        result: MonitoringResult,
        group_size: int,
        start_time: Optional[float] = None,
    ) -> Optional[OmedaResult]:
        indices = result.first_violation_indices(group_size, start_time)
        if indices.size == 0:
            return None
        return monitor.diagnose(data, indices)

    def view_disagreement(
        self, controller_omeda: OmedaResult, process_omeda: OmedaResult
    ) -> float:
        """Largest relative per-variable disagreement between the two diagnoses.

        Only variables whose contribution is significant (at least
        ``significance_fraction`` of the largest bar in either view) are
        considered, so that noise-level bars cannot dominate the metric.
        Identical views give 0; a variable implicated in one view but not the
        other (the signature of an attack) gives a value close to or above 1.
        """
        controller = np.asarray(controller_omeda.contributions, dtype=float)
        process = np.asarray(process_omeda.contributions, dtype=float)
        scale = max(float(np.max(np.abs(controller))), float(np.max(np.abs(process))), 1e-12)
        significant = (np.abs(controller) >= self.significance_fraction * scale) | (
            np.abs(process) >= self.significance_fraction * scale
        )
        if not np.any(significant):
            return 0.0
        magnitude = np.maximum(np.abs(controller), np.abs(process))[significant]
        difference = np.abs(controller - process)[significant]
        return float(np.max(difference / np.maximum(magnitude, 1e-12)))

    def _classify(
        self,
        detection_time: Optional[float],
        controller_omeda: Optional[OmedaResult],
        process_omeda: Optional[OmedaResult],
        similarity: Optional[float],
    ) -> AnomalyClass:
        if detection_time is None:
            return AnomalyClass.NORMAL
        if controller_omeda is None or process_omeda is None or similarity is None:
            return AnomalyClass.UNCLEAR

        controller_clear = controller_omeda.dominance_ratio() >= self.dominance_threshold
        process_clear = process_omeda.dominance_ratio() >= self.dominance_threshold
        if not controller_clear and not process_clear:
            return AnomalyClass.UNCLEAR

        # An attack makes the two views disagree: a variable implicated in one
        # view but not in the other (or with opposite sign), a different
        # dominant variable, or diagnosis vectors pointing in clearly
        # different directions.  A genuine process disturbance leaves the two
        # views in agreement, because the controllers see exactly what the
        # process experiences.
        if self.view_disagreement(controller_omeda, process_omeda) > self.divergence_threshold:
            return AnomalyClass.INTEGRITY_ATTACK
        if controller_omeda.dominant_variable() != process_omeda.dominant_variable():
            return AnomalyClass.INTEGRITY_ATTACK
        if similarity >= self.similarity_threshold:
            return AnomalyClass.DISTURBANCE
        return AnomalyClass.INTEGRITY_ATTACK
