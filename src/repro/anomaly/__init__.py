"""Anomaly detection and dual-level diagnosis.

The paper's key idea is to monitor **both** controller-level and process-level
data with MSPC: detection works on either view, and comparing the oMEDA
diagnoses of the two views makes it possible to tell process disturbances from
integrity attacks — the two views agree under a disturbance and diverge under
an attack.  This package provides the streaming detector, the anomaly event
record and the dual-level analyzer implementing that comparison.
"""

from repro.anomaly.events import AnomalyEvent
from repro.anomaly.detector import StreamingDetector
from repro.anomaly.diagnosis import (
    DualLevelAnalyzer,
    DualLevelDiagnosis,
    DiagnosisSummary,
    AnomalyClass,
    omeda_similarity,
    view_divergence,
)

__all__ = [
    "AnomalyEvent",
    "StreamingDetector",
    "DualLevelAnalyzer",
    "DualLevelDiagnosis",
    "DiagnosisSummary",
    "AnomalyClass",
    "omeda_similarity",
    "view_divergence",
]
