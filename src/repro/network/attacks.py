"""Attack models on the controller/process communication.

Following the adversary model of Krotofil et al. used by the paper, two attack
primitives are provided, both applying to a single channel entry (one sensor
or one actuator signal) over an attack interval ``[start_hour, end_hour)``:

* :class:`IntegrityAttack` — the attacker replaces the transmitted value
  ``Y_i(t)`` with an arbitrary value ``Y_i^a(t)`` (a constant, or any callable
  of time and the true value);
* :class:`DoSAttack` — the attacker suppresses communication, so the receiver
  keeps using the last value received before the attack started:
  ``Y_i^a(t) = Y_i(t_a - 1)``.

Beyond the paper's two primitives, three further manipulations common in the
ICS-attack literature are provided (all composable through
:mod:`repro.experiments.injections`):

* :class:`BiasAttack` — a constant offset is added to the true value;
* :class:`DriftAttack` — the delivered value drifts away from the true one at
  a constant rate, emulating slow sensor degradation or a stealthy ramp;
* :class:`ReplayAttack` — values recorded during a pre-attack window are
  replayed in a loop, masking whatever happens behind them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence, Union

from repro.common.exceptions import ConfigurationError

__all__ = [
    "Attack",
    "IntegrityAttack",
    "DoSAttack",
    "BiasAttack",
    "DriftAttack",
    "ReplayAttack",
    "AttackSchedule",
]

#: An injected value: either a constant or ``f(time_hours, true_value) -> value``.
InjectedValue = Union[float, Callable[[float, float], float]]


class Attack(ABC):
    """Base class of attacks on a single channel entry.

    Parameters
    ----------
    target_index:
        1-based index of the targeted entry within the channel vector
        (e.g. ``3`` to target ``XMV(3)`` on the actuator channel).
    start_hour:
        Simulation hour at which the attack begins.
    end_hour:
        Simulation hour at which the attack stops; ``None`` means the attack
        lasts until the end of the run.
    """

    def __init__(
        self,
        target_index: int,
        start_hour: float,
        end_hour: Optional[float] = None,
    ):
        if target_index < 1:
            raise ConfigurationError("target_index is 1-based and must be >= 1")
        if start_hour < 0:
            raise ConfigurationError("start_hour must be >= 0")
        if end_hour is not None and end_hour <= start_hour:
            raise ConfigurationError("end_hour must be greater than start_hour")
        self.target_index = int(target_index)
        self.start_hour = float(start_hour)
        self.end_hour = end_hour if end_hour is None else float(end_hour)

    def is_active(self, time_hours: float) -> bool:
        """Whether the attack is active at ``time_hours``."""
        if time_hours < self.start_hour:
            return False
        if self.end_hour is not None and time_hours >= self.end_hour:
            return False
        return True

    def reset(self) -> None:
        """Clear any per-run internal state (e.g. the DoS frozen value)."""

    def observe(self, true_value: float, time_hours: float) -> None:
        """See the true value in transit (called on every transmission).

        Stateful attacks (DoS freezing the last pre-attack value, replay
        recording its window) override this; stateless attacks ignore it.
        """

    @abstractmethod
    def tamper(self, true_value: float, time_hours: float) -> float:
        """Return the value the receiver gets instead of ``true_value``."""

    def describe(self) -> str:
        """Short human-readable description."""
        window = f"from t={self.start_hour:g} h"
        if self.end_hour is not None:
            window += f" to t={self.end_hour:g} h"
        return f"{type(self).__name__} on entry {self.target_index} {window}"


class IntegrityAttack(Attack):
    """Replace the transmitted value with an attacker-chosen one.

    Parameters
    ----------
    injected:
        The injected value: a constant (e.g. ``0.0`` to command a closed
        valve or forge a zero flow reading), or a callable
        ``f(time_hours, true_value)`` for time-varying manipulations.
    """

    def __init__(
        self,
        target_index: int,
        start_hour: float,
        injected: InjectedValue,
        end_hour: Optional[float] = None,
    ):
        super().__init__(target_index, start_hour, end_hour)
        self.injected = injected

    def tamper(self, true_value: float, time_hours: float) -> float:
        if callable(self.injected):
            return float(self.injected(time_hours, true_value))
        return float(self.injected)


class DoSAttack(Attack):
    """Suppress communication: the receiver keeps the last pre-attack value."""

    def __init__(
        self,
        target_index: int,
        start_hour: float,
        end_hour: Optional[float] = None,
    ):
        super().__init__(target_index, start_hour, end_hour)
        self._frozen_value: Optional[float] = None

    def reset(self) -> None:
        self._frozen_value = None

    def observe(self, true_value: float, time_hours: float) -> None:
        """Track the latest pre-attack value (called by the channel)."""
        if not self.is_active(time_hours):
            self._frozen_value = float(true_value)

    def tamper(self, true_value: float, time_hours: float) -> float:
        if self._frozen_value is None:
            # The attack started before any value was transmitted; fall back
            # to freezing the first value seen.
            self._frozen_value = float(true_value)
        return self._frozen_value


class BiasAttack(Attack):
    """Add a constant offset to the transmitted value.

    Parameters
    ----------
    offset:
        The bias added to the true value while the attack is active.
    """

    def __init__(
        self,
        target_index: int,
        start_hour: float,
        offset: float,
        end_hour: Optional[float] = None,
    ):
        super().__init__(target_index, start_hour, end_hour)
        self.offset = float(offset)

    def tamper(self, true_value: float, time_hours: float) -> float:
        return float(true_value) + self.offset


class DriftAttack(Attack):
    """Drift the delivered value away from the true one at a constant rate.

    The delivered value is ``true + rate_per_hour * (t - start_hour)``: zero
    deviation at onset, growing linearly — the stealthy ramp / slow sensor
    degradation pattern, much harder to catch with fixed thresholds than a
    step change.
    """

    def __init__(
        self,
        target_index: int,
        start_hour: float,
        rate_per_hour: float,
        end_hour: Optional[float] = None,
    ):
        super().__init__(target_index, start_hour, end_hour)
        self.rate_per_hour = float(rate_per_hour)

    def tamper(self, true_value: float, time_hours: float) -> float:
        elapsed = float(time_hours) - self.start_hour
        return float(true_value) + self.rate_per_hour * elapsed


class ReplayAttack(Attack):
    """Replay values recorded during a pre-attack window, in a loop.

    The attacker records the signal over ``[start_hour - record_hours,
    start_hour)`` and, once active, substitutes the recording for the live
    signal, cycling back to its beginning when it runs out — the classic
    cover for a concurrent physical manipulation.  If nothing was recorded
    (the attack starts too early), the first live value is frozen instead,
    degenerating to a DoS-style hold.
    """

    def __init__(
        self,
        target_index: int,
        start_hour: float,
        record_hours: float = 1.0,
        end_hour: Optional[float] = None,
    ):
        super().__init__(target_index, start_hour, end_hour)
        if record_hours <= 0:
            raise ConfigurationError("record_hours must be positive")
        self.record_hours = float(record_hours)
        self._recording: List[float] = []
        self._cursor = 0

    def reset(self) -> None:
        self._recording = []
        self._cursor = 0

    def observe(self, true_value: float, time_hours: float) -> None:
        if self.start_hour - self.record_hours <= time_hours < self.start_hour:
            self._recording.append(float(true_value))

    def tamper(self, true_value: float, time_hours: float) -> float:
        if not self._recording:
            self._recording.append(float(true_value))
        value = self._recording[self._cursor % len(self._recording)]
        self._cursor += 1
        return value


class AttackSchedule:
    """A collection of attacks applied to one channel."""

    def __init__(self, attacks: Optional[Sequence[Attack]] = None):
        self._attacks: List[Attack] = list(attacks or [])

    @property
    def attacks(self) -> Sequence[Attack]:
        """The scheduled attacks."""
        return tuple(self._attacks)

    def add(self, attack: Attack) -> "AttackSchedule":
        """Add an attack; returns ``self`` for chaining."""
        self._attacks.append(attack)
        return self

    def reset(self) -> None:
        """Reset per-run state of every attack."""
        for attack in self._attacks:
            attack.reset()

    def is_empty(self) -> bool:
        """Whether no attack has been scheduled."""
        return not self._attacks

    def active_at(self, time_hours: float) -> List[Attack]:
        """Attacks active at ``time_hours``."""
        return [attack for attack in self._attacks if attack.is_active(time_hours)]

    @classmethod
    def none(cls) -> "AttackSchedule":
        """An empty schedule (benign channel)."""
        return cls()
