"""Network layer between controllers and the physical process.

The paper's adversary model (after Krotofil et al.) assumes a man-in-the-middle
that can read and manipulate the traffic between the controllers and the
sensors/actuators.  This package models that link explicitly:

* :class:`~repro.network.channel.Channel` carries a vector of values
  (measurements towards the controller, or commands towards the plant) and
  applies any active attacks in transit;
* :mod:`repro.network.attacks` implements the integrity attack
  (value replacement) and the DoS attack (hold-last-value) of the paper,
  plus scheduling helpers.
"""

from repro.network.channel import Channel
from repro.network.attacks import (
    Attack,
    IntegrityAttack,
    DoSAttack,
    AttackSchedule,
)

__all__ = [
    "Channel",
    "Attack",
    "IntegrityAttack",
    "DoSAttack",
    "AttackSchedule",
]
