"""Communication channels between the plant and the controllers.

A :class:`Channel` carries a vector of values each time :meth:`Channel.transmit`
is called — sensor readings on the way to the controller, or actuator commands
on the way to the plant.  Attacks registered on the channel tamper with the
targeted entries while they are active; the untampered entries pass through
unchanged.  The channel never mutates the sender's array.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.network.attacks import Attack, AttackSchedule

__all__ = ["Channel", "BatchChannel"]


class Channel:
    """A (possibly compromised) communication channel.

    Parameters
    ----------
    name:
        Channel name, e.g. ``"sensors"`` or ``"actuators"`` (used in logs and
        metadata only).
    n_entries:
        Length of the transmitted vectors; transmissions of any other length
        are rejected.
    attacks:
        Attack schedule applied to this channel.
    """

    def __init__(
        self,
        name: str,
        n_entries: int,
        attacks: Optional[AttackSchedule] = None,
    ):
        if n_entries < 1:
            raise ConfigurationError("n_entries must be >= 1")
        self.name = str(name)
        self.n_entries = int(n_entries)
        self.attacks = attacks or AttackSchedule.none()
        self._transmissions = 0
        self._validate_targets()

    def _validate_targets(self) -> None:
        for attack in self.attacks.attacks:
            if attack.target_index > self.n_entries:
                raise ConfigurationError(
                    f"attack targets entry {attack.target_index} but channel "
                    f"{self.name!r} only carries {self.n_entries} entries"
                )

    @property
    def n_transmissions(self) -> int:
        """Number of vectors transmitted since the last reset."""
        return self._transmissions

    @property
    def compromised(self) -> bool:
        """Whether any attack is scheduled on this channel."""
        return not self.attacks.is_empty()

    def reset(self) -> None:
        """Reset per-run state (attack memory and counters)."""
        self.attacks.reset()
        self._transmissions = 0

    def add_attack(self, attack: Attack) -> "Channel":
        """Register an additional attack; returns ``self`` for chaining."""
        if attack.target_index > self.n_entries:
            raise ConfigurationError(
                f"attack targets entry {attack.target_index} but channel "
                f"{self.name!r} only carries {self.n_entries} entries"
            )
        self.attacks.add(attack)
        return self

    def transmit(self, values: np.ndarray, time_hours: float) -> np.ndarray:
        """Deliver ``values``, applying any active attacks in transit."""
        values = np.asarray(values, dtype=float).ravel()
        if values.shape[0] != self.n_entries:
            raise ConfigurationError(
                f"channel {self.name!r} carries {self.n_entries} entries, "
                f"got {values.shape[0]}"
            )
        delivered = values.copy()
        for attack in self.attacks.attacks:
            index = attack.target_index - 1
            attack.observe(float(values[index]), time_hours)
            if attack.is_active(time_hours):
                delivered[index] = attack.tamper(float(values[index]), time_hours)
        self._transmissions += 1
        return delivered


class BatchChannel:
    """Row-wise view over the per-run channels of a lockstep batch.

    Each run keeps its own :class:`Channel` (and therefore its own stateful
    attack instances — DoS freezes, replay recordings), so the batched
    backend applies exactly the serial tampering semantics per row.  Rows
    whose channel carries no attack take a vectorized pass-through: the
    delivered matrix starts as one copy of the transmitted matrix and only
    compromised rows are rewritten through their channel.

    Parameters
    ----------
    channels:
        One (possibly compromised) :class:`Channel` per batch row, all
        carrying the same number of entries.
    """

    def __init__(self, channels: Sequence[Channel]):
        self._channels = list(channels)
        if self._channels:
            widths = {channel.n_entries for channel in self._channels}
            if len(widths) != 1:
                raise ConfigurationError(
                    "all channels of a batch must carry the same entry count"
                )
        self._refresh_compromised()

    def _refresh_compromised(self) -> None:
        self._compromised_rows = [
            row for row, channel in enumerate(self._channels) if channel.compromised
        ]

    @property
    def n_rows(self) -> int:
        """Number of runs in the batch."""
        return len(self._channels)

    def reset(self) -> None:
        """Reset per-run state of every row's channel."""
        for channel in self._channels:
            channel.reset()

    def take(self, indices: np.ndarray) -> None:
        """Keep only the given rows (compaction after trips / early stops)."""
        self._channels = [self._channels[int(i)] for i in np.asarray(indices)]
        self._refresh_compromised()

    def transmit(self, values: np.ndarray, time_hours: float) -> np.ndarray:
        """Deliver a ``(B, n_entries)`` matrix, tampering compromised rows."""
        delivered = values.copy()
        for row in self._compromised_rows:
            delivered[row] = self._channels[row].transmit(values[row], time_hours)
        return delivered
