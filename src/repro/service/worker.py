"""The chunk worker: claim → simulate → publish → ack.

:class:`ChunkWorker` is deliberately coordinator-agnostic: it drives any
object exposing the coordinator protocol (``campaign_ids``,
``spec_mapping``, ``claim``, ``heartbeat``, ``ack``, ``progress``) — the
in-process :class:`~repro.service.coordinator.CampaignCoordinator` for
tests and single-host fan-out, or a
:class:`~repro.service.client.CoordinatorClient` for remote execution.

Executing a chunk is just handing its :class:`RunSpec` slice to a normal
:class:`~repro.experiments.parallel.CampaignEngine` whose cache points at
the shared store: the batch backend (``run_specs_batched`` under the hood),
per-run derived seeds and atomic NPZ publication are all inherited, so a
distributed run is bitwise-identical to a local one and every completed
run is durable the moment it is written — a worker dying mid-chunk loses
at most the runs it had not yet finished.

While a chunk simulates, a daemon heartbeat thread renews the lease every
``[service] heartbeat_seconds``; if the coordinator refuses a renewal (the
lease expired and was reclaimed), the worker abandons the chunk after the
current engine call instead of acking it.  The heartbeat thread is always
stopped and joined *before* the final ack, so a worker that returns from
:meth:`drain_all` leaves no thread behind.

With a :class:`~repro.common.retry.RetryPolicy`, the claim/progress loop
rides out transient coordinator outages.  Retrying a *claim* is safe at
this layer (unlike in the client) because a claim whose response was lost
merely leaves a lease nobody works on — the coordinator's reaper returns
it to the pool after ``lease_seconds``, costing latency, never
correctness.  A worker whose retries exhaust raises
:class:`~repro.common.exceptions.RetryExhaustedError` to its caller
(``run_campaign.py --worker`` exits non-zero on it).
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import replace
from typing import Any, Dict, Optional

from repro import faults
from repro.api.spec import CampaignSpec
from repro.common.exceptions import ServiceUnavailableError
from repro.common.retry import RetryPolicy
from repro.experiments.parallel import CampaignEngine
from repro.obs.logs import get_logger, log_context
from repro.obs.trace import Tracer, get_tracer, set_tracer
from repro.service.chunks import WorkChunk

__all__ = ["ChunkWorker"]

_LOG = get_logger("service.worker")


class ChunkWorker:
    """Executes claimable chunks against a coordinator.

    Parameters
    ----------
    coordinator:
        A :class:`CampaignCoordinator` or :class:`CoordinatorClient`.
    worker_id:
        Stable identity used in leases and logs; defaults to
        ``"<hostname>-<pid>-<4 hex>"``.
    cache_dir:
        Override of the shared store path, for workers that mount it
        somewhere else than the coordinator does.  ``None`` trusts the
        normalized spec.
    n_workers:
        Override of the per-chunk process fan-out (``None`` keeps the
        spec's execution plan).  ``1`` makes the worker purely in-process.
    retry:
        Optional :class:`~repro.common.retry.RetryPolicy` for the worker's
        own claim/progress loop (transient coordinator outages).  ``None``
        keeps the loop fail-fast.
    """

    def __init__(
        self,
        coordinator,
        worker_id: Optional[str] = None,
        cache_dir: Optional[str] = None,
        n_workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.coordinator = coordinator
        self.worker_id = worker_id or (
            f"{os.uname().nodename}-{os.getpid()}-{uuid.uuid4().hex[:4]}"
        )
        self.cache_dir = cache_dir
        self.n_workers = n_workers
        self.retry = retry
        self.n_chunks_done = 0
        self.n_chunks_abandoned = 0
        self.n_simulated = 0
        self.n_cache_hits = 0
        self._specs: Dict[str, CampaignSpec] = {}
        #: The most recent chunk's heartbeat thread — always signalled and
        #: joined before the chunk's ack; kept so tests (and operators)
        #: can assert it actually died.
        self.last_heartbeat_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def _spec_of(self, campaign_id: str) -> CampaignSpec:
        """The campaign's normalized spec, fetched once and cached."""
        if campaign_id not in self._specs:
            spec = CampaignSpec.from_mapping(
                self.coordinator.spec_mapping(campaign_id)
            )
            if self.cache_dir is not None or self.n_workers is not None:
                parallel = spec.experiment.parallel
                if self.cache_dir is not None:
                    parallel = replace(parallel, cache_dir=str(self.cache_dir))
                if self.n_workers is not None:
                    parallel = replace(parallel, n_workers=int(self.n_workers))
                spec = spec.with_experiment(
                    spec.experiment.with_parallel(parallel)
                )
            self._specs[campaign_id] = spec
        return self._specs[campaign_id]

    def _execute(
        self, campaign_id: str, descriptor: Dict[str, Any]
    ) -> bool:
        """Simulate one claimed chunk and ack it; True when acknowledged."""
        spec = self._spec_of(campaign_id)
        chunk = WorkChunk.from_mapping(descriptor)
        specs = chunk.specs_of(spec)
        engine = CampaignEngine(spec.experiment.parallel)

        lease_lost = threading.Event()
        stop_beating = threading.Event()
        interval = float(spec.service.heartbeat_seconds)

        def beat() -> None:
            while not stop_beating.wait(interval):
                try:
                    alive = self.coordinator.heartbeat(
                        campaign_id, chunk.chunk_id, self.worker_id
                    )
                except Exception:
                    # A transient coordinator outage must not kill the
                    # simulation; the lease may expire, in which case the
                    # ack below simply won't be ours to make.
                    continue
                if not alive:
                    lease_lost.set()
                    return

        # When the campaign's [obs] section traces, the chunk runs under a
        # worker-local tracer whose drained span buffer ships back in the
        # ack — the coordinator merges every worker's buffer into one
        # campaign trace.  The previous global tracer is restored either
        # way, so an untraced campaign leaves the process untouched.
        tracer: Optional[Tracer] = None
        previous_tracer = None
        if spec.obs.tracing:
            previous_tracer = get_tracer()
            tracer = Tracer(enabled=True, process=self.worker_id)
            set_tracer(tracer)

        heartbeat_thread = threading.Thread(target=beat, daemon=True)
        heartbeat_thread.start()
        self.last_heartbeat_thread = heartbeat_thread
        try:
            with log_context(
                campaign=campaign_id,
                chunk=chunk.chunk_id,
                worker=self.worker_id,
            ):
                # Fault seam: chaos plans kill the worker here — after the
                # claim, before any run publishes.
                faults.fire(
                    "service.worker.execute",
                    campaign=campaign_id,
                    chunk=chunk.chunk_id,
                )
                if tracer is not None:
                    with tracer.span(
                        "worker.chunk",
                        campaign=campaign_id,
                        chunk=chunk.chunk_id,
                        n_runs=len(specs),
                    ):
                        # Publication happens inside the engine: every
                        # completed run is written to the shared cache under
                        # its content-derived key as it finishes.
                        # prune=False — eviction mid-campaign could drop
                        # entries other chunks already produced.
                        engine.run(specs, prune=False)
                else:
                    engine.run(specs, prune=False)
        finally:
            # Stop the heartbeat before anything else — in particular
            # before the final ack — and wait for the thread to actually
            # die.  The join must outlast a heartbeat that is mid-flight
            # against a slow coordinator, or the thread leaks past
            # drain_all; the client's request timeout bounds that flight.
            stop_beating.set()
            request_timeout = getattr(self.coordinator, "timeout", None)
            heartbeat_thread.join(
                timeout=(float(request_timeout) if request_timeout else 0.0)
                + 5.0
            )
            if heartbeat_thread.is_alive():  # pragma: no cover - defensive
                _LOG.warning(
                    "heartbeat thread still alive after join deadline",
                    extra={"chunk": chunk.chunk_id, "worker": self.worker_id},
                )
            if tracer is not None:
                set_tracer(previous_tracer)
        stats = engine.last_stats
        self.n_simulated += stats.n_simulated
        self.n_cache_hits += stats.n_cache_hits
        if lease_lost.is_set():
            # The chunk was reclaimed while we simulated.  The results are
            # in the cache regardless (nothing is wasted), but the ack —
            # and the bookkeeping that goes with it — belongs to the
            # current leaseholder.
            self.n_chunks_abandoned += 1
            _LOG.warning(
                "chunk abandoned: lease reclaimed mid-simulation",
                extra={"chunk": chunk.chunk_id, "worker": self.worker_id},
            )
            return False
        spans = tracer.drain() if tracer is not None else None
        # Fault seam: chaos plans kill the worker here — the chunk's runs
        # are all in the shared cache, but the ack never happens, so the
        # lease must expire and another worker re-claims into cache hits.
        faults.fire(
            "service.worker.ack", campaign=campaign_id, chunk=chunk.chunk_id
        )
        response = self.coordinator.ack(
            campaign_id,
            chunk.chunk_id,
            self.worker_id,
            n_simulated=stats.n_simulated,
            n_cache_hits=stats.n_cache_hits,
            spans=spans,
        )
        if response.get("accepted"):
            self.n_chunks_done += 1
            _LOG.info(
                "chunk acknowledged",
                extra={
                    "chunk": chunk.chunk_id,
                    "worker": self.worker_id,
                    "n_simulated": stats.n_simulated,
                    "n_cache_hits": stats.n_cache_hits,
                },
            )
            return True
        self.n_chunks_abandoned += 1
        return False

    # ------------------------------------------------------------------
    def _claim(self, campaign_id: str) -> Optional[Dict[str, Any]]:
        """Claim a chunk, retrying transient outages when a policy is set.

        Safe here (unlike in the client): a claim that succeeded
        server-side but lost its response leaves an unworked lease the
        coordinator reaps after ``lease_seconds`` — latency, not
        corruption.
        """
        if self.retry is None:
            return self.coordinator.claim(campaign_id, self.worker_id)
        return self.retry.call(
            lambda: self.coordinator.claim(campaign_id, self.worker_id),
            retry_on=(ServiceUnavailableError,),
            description=f"claim chunk of campaign {campaign_id}",
        )

    def _progress(self, campaign_id: str) -> Dict[str, Any]:
        if self.retry is None:
            return self.coordinator.progress(campaign_id)
        return self.retry.call(
            lambda: self.coordinator.progress(campaign_id),
            retry_on=(ServiceUnavailableError,),
            description=f"progress of campaign {campaign_id}",
        )

    def run_once(self, campaign_id: str) -> bool:
        """Claim and execute at most one chunk; True when one was executed."""
        descriptor = self._claim(campaign_id)
        if descriptor is None:
            return False
        self._execute(campaign_id, descriptor)
        return True

    def drain(self, campaign_id: str, poll_seconds: Optional[float] = None) -> int:
        """Work on a campaign until it completes; returns chunks executed.

        When no chunk is claimable but the campaign is still incomplete
        (every remaining chunk is leased to someone else), the worker
        sleeps ``poll_seconds`` — another worker's death would then return
        chunks to the pool for us to pick up.
        """
        executed = 0
        while True:
            if self.run_once(campaign_id):
                executed += 1
                continue
            progress = self._progress(campaign_id)
            if progress["complete"]:
                return executed
            time.sleep(
                float(poll_seconds)
                if poll_seconds is not None
                else float(self._spec_of(campaign_id).service.poll_seconds)
            )

    def drain_all(self, poll_seconds: float = 0.5, max_idle: Optional[float] = None) -> int:
        """Work on every submitted campaign until all complete (or idle out).

        ``max_idle`` bounds how long the worker waits for *new* campaigns
        once everything it can see is complete; ``None`` waits forever
        (the long-running service worker).  Returns chunks executed.
        """
        executed = 0
        idle_since: Optional[float] = None
        while True:
            progressed = False
            for campaign_id in self.coordinator.campaign_ids():
                while self.run_once(campaign_id):
                    executed += 1
                    progressed = True
            if progressed:
                idle_since = None
                continue
            incomplete = [
                campaign_id
                for campaign_id in self.coordinator.campaign_ids()
                if not self._progress(campaign_id)["complete"]
            ]
            if not incomplete:
                if max_idle is not None:
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since >= max_idle:
                        return executed
            time.sleep(float(poll_seconds))
