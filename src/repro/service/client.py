"""HTTP client for the campaign coordinator's REST surface.

:class:`CoordinatorClient` mirrors the in-process
:class:`~repro.service.coordinator.CampaignCoordinator` protocol
(``campaign_ids``, ``spec_mapping``, ``claim``, ``heartbeat``, ``ack``,
``progress``, ``tables``, ``health``) so a
:class:`~repro.service.worker.ChunkWorker` drives either interchangeably;
it additionally exposes ``submit`` for clients pushing a spec to a remote
coordinator.

Error mapping: a coordinator that cannot be reached at all (connection
refused, DNS failure, timeout) raises
:class:`~repro.common.exceptions.ServiceUnavailableError`; a reachable
coordinator that rejects the request raises
:class:`~repro.common.exceptions.ServiceError` carrying the server's
message — with HTTP 409 from ``GET /campaigns/<id>/tables`` mapped to the
typed :class:`~repro.common.exceptions.CampaignIncompleteError`, so
``--submit --no-wait`` pollers branch on the exception type instead of
string-matching.  Callers never see raw ``urllib`` exceptions.

Passing a :class:`~repro.common.retry.RetryPolicy` makes every
**idempotent** operation retry transparently on
``ServiceUnavailableError`` (exhaustion raises
:class:`~repro.common.exceptions.RetryExhaustedError` with the attempt
trail).  ``claim`` is deliberately never retried here: a lost claim
response leaves a lease the client does not know it holds, so claim
recovery belongs to the worker loop (and to the coordinator's lease
reaper), not to a blind re-send.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro import faults
from repro.api.spec import CampaignSpec
from repro.common.exceptions import (
    CampaignIncompleteError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.common.retry import RetryPolicy

__all__ = ["CoordinatorClient"]


class CoordinatorClient:
    """Talks to a :class:`CoordinatorServer` over HTTP.

    Parameters
    ----------
    base_url:
        The coordinator's base URL, e.g. ``"http://127.0.0.1:8765"``.
    timeout:
        Per-request socket timeout in seconds.
    retry:
        Optional :class:`~repro.common.retry.RetryPolicy` applied to
        idempotent operations on transport failure.  ``None`` (the
        default) preserves fail-fast behaviour.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retry = retry

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        op: str = "request",
        idempotent: bool = True,
    ) -> Dict[str, Any]:
        if self.retry is None or not idempotent:
            return self._request_once(method, path, payload, op)
        return self.retry.call(
            lambda: self._request_once(method, path, payload, op),
            retry_on=(ServiceUnavailableError,),
            description=f"{method} {path}",
        )

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]],
        op: str,
    ) -> Dict[str, Any]:
        try:
            # Fault seam: chaos plans refuse/delay/duplicate protocol
            # calls here, upstream of the real transport.
            directive = faults.fire(f"service.client.{op}", path=path)
            response = self._http(method, path, payload)
            if directive == "duplicate":
                # Re-send the same (idempotent) operation — the duplicated
                # answer must match what a single send produced.
                response = self._http(method, path, payload)
            return response
        except ConnectionError as error:
            # Includes InjectedFault: injected transport failures take the
            # same recovery path as real ones.
            raise ServiceUnavailableError(
                f"cannot reach campaign coordinator at {self.base_url}: {error}"
            ) from None

    def _http(
        self, method: str, path: str, payload: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            # The coordinator answered — surface its message, not a stack
            # of urllib internals.
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error")
            except Exception:
                detail = None
            detail = detail or (
                f"coordinator returned HTTP {error.code} for {method} {path}"
            )
            if error.code == 409:
                raise CampaignIncompleteError(detail) from None
            raise ServiceError(detail) from None
        except (urllib.error.URLError, socket.timeout, ConnectionError, OSError) as error:
            reason = getattr(error, "reason", error)
            raise ServiceUnavailableError(
                f"cannot reach campaign coordinator at {self.base_url}: {reason}"
            ) from None

    # -- coordinator protocol (what ChunkWorker drives) ----------------
    def campaign_ids(self) -> List[str]:
        """Ids of every campaign the coordinator knows about."""
        return list(
            self._request("GET", "/campaigns", op="campaigns")["campaigns"]
        )

    def spec_mapping(self, campaign_id: str) -> Dict[str, Any]:
        """The campaign's normalized spec document."""
        return self._request(
            "GET", f"/campaigns/{campaign_id}/spec", op="spec"
        )["spec"]

    def claim(self, campaign_id: str, worker_id: str) -> Optional[Dict[str, Any]]:
        """Lease the next pending chunk; None when nothing is claimable."""
        response = self._request(
            "POST",
            f"/campaigns/{campaign_id}/claim",
            {"worker_id": worker_id},
            op="claim",
            idempotent=False,
        )
        return response["chunk"]

    def heartbeat(self, campaign_id: str, chunk_id: str, worker_id: str) -> bool:
        """Renew a lease; False means it is no longer ours."""
        response = self._request(
            "POST",
            f"/campaigns/{campaign_id}/chunks/{chunk_id}/heartbeat",
            {"worker_id": worker_id},
            op="heartbeat",
        )
        return bool(response["alive"])

    def ack(
        self,
        campaign_id: str,
        chunk_id: str,
        worker_id: str,
        n_simulated: int = 0,
        n_cache_hits: int = 0,
        spans: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Report a chunk complete; the coordinator verifies the cache.

        ``spans`` ships the worker's drained trace buffer for the chunk
        (tracing campaigns only); the coordinator merges every worker's
        buffer into the campaign trace served at ``/campaigns/<id>/trace``.
        """
        payload: Dict[str, Any] = {
            "worker_id": worker_id,
            "n_simulated": int(n_simulated),
            "n_cache_hits": int(n_cache_hits),
        }
        if spans:
            payload["spans"] = list(spans)
        return self._request(
            "POST",
            f"/campaigns/{campaign_id}/chunks/{chunk_id}/ack",
            payload,
            op="ack",
        )

    def progress(self, campaign_id: str) -> Dict[str, Any]:
        """Scheduling progress: chunk counts by state, run totals, complete."""
        return self._request("GET", f"/campaigns/{campaign_id}", op="progress")

    def chunk_states(self, campaign_id: str) -> List[Dict[str, Any]]:
        """Per-chunk state records (for monitoring, not the work loop)."""
        return list(
            self._request(
                "GET", f"/campaigns/{campaign_id}/chunks", op="chunks"
            )["chunks"]
        )

    def events(self, campaign_id: str) -> List[str]:
        """The coordinator's per-campaign progress log."""
        return list(
            self._request(
                "GET", f"/campaigns/{campaign_id}/events", op="events"
            )["events"]
        )

    def trace(self, campaign_id: str) -> List[Dict[str, Any]]:
        """The campaign's merged worker span records."""
        return list(
            self._request(
                "GET", f"/campaigns/{campaign_id}/trace", op="trace"
            )["spans"]
        )

    def metrics_text(self) -> str:
        """The coordinator's ``/metrics`` document (Prometheus text)."""
        url = f"{self.base_url}/metrics"
        request = urllib.request.Request(url, method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(
                f"coordinator returned HTTP {error.code} for GET /metrics"
            ) from None
        except (urllib.error.URLError, socket.timeout, ConnectionError, OSError) as error:
            reason = getattr(error, "reason", error)
            raise ServiceUnavailableError(
                f"cannot reach campaign coordinator at {self.base_url}: {reason}"
            ) from None

    def tables(self, campaign_id: str) -> Dict[str, Any]:
        """The reduced result tables; raises ServiceError until complete."""
        return self._request(
            "GET", f"/campaigns/{campaign_id}/tables", op="tables"
        )["tables"]

    def health(self) -> Dict[str, Any]:
        """The coordinator's liveness document."""
        return self._request("GET", "/health", op="health")

    # -- client-only conveniences --------------------------------------
    def submit(self, spec: CampaignSpec) -> str:
        """Submit a campaign spec; returns its campaign id (idempotent)."""
        response = self._request(
            "POST", "/campaigns", {"spec": spec.to_mapping()}, op="submit"
        )
        return str(response["campaign_id"])
