"""Distributed campaign service: coordinator, worker protocol, REST surface.

``repro.service`` turns a :class:`~repro.api.spec.CampaignSpec` into a
shardable unit of distributed work without ever shipping simulation data
over the wire:

* :mod:`repro.service.chunks` — deterministic flattening of a spec into
  its ordered :class:`RunSpec` list, content fingerprinting, and sharding
  into :class:`WorkChunk` index ranges.
* :mod:`repro.service.coordinator` — :class:`CampaignCoordinator`: submit
  (idempotent by fingerprint), lease-based claim/heartbeat/ack scheduling
  with lazy expiry reaping, cache-verified acks, and reduction of the
  finished campaign into the same tables single-host ``api.run`` produces.
* :mod:`repro.service.worker` — :class:`ChunkWorker`: claim → simulate via
  the normal :class:`CampaignEngine` (batch backend included) → publish
  into the shared NPZ cache → ack, with a lease heartbeat thread.
* :mod:`repro.service.rest` — :class:`CoordinatorServer`: the stdlib
  ``http.server`` control surface (submit, poll, claim, ack, tables,
  health).
* :mod:`repro.service.client` — :class:`CoordinatorClient`: the urllib
  client mirroring the coordinator protocol, so workers drive local and
  remote coordinators interchangeably (optionally retrying idempotent
  operations under a :class:`~repro.common.retry.RetryPolicy`).
* :mod:`repro.service.journal` — :class:`CoordinatorJournal`: the durable
  scheduling journal; a coordinator constructed with ``journal=`` records
  every submit/claim/heartbeat/ack/reap and replays them on restart, so
  chunk attempt counts and worker history survive a crash.

Because results land in the location-independent NPZ cache under each
run's content-derived key, chunk execution is idempotent and the whole
service is resumable: killed workers, re-claimed leases and coordinator
restarts only ever cost re-simulation of runs that never hit the cache.
"""

from repro.service.chunks import (
    WorkChunk,
    campaign_fingerprint,
    campaign_run_specs,
    shard_campaign,
)
from repro.service.client import CoordinatorClient
from repro.service.coordinator import CampaignCoordinator, CoordinatorMetrics
from repro.service.journal import CoordinatorJournal
from repro.service.rest import CoordinatorServer
from repro.service.worker import ChunkWorker

__all__ = [
    "CampaignCoordinator",
    "CoordinatorMetrics",
    "CoordinatorJournal",
    "ChunkWorker",
    "CoordinatorClient",
    "CoordinatorServer",
    "WorkChunk",
    "campaign_fingerprint",
    "campaign_run_specs",
    "shard_campaign",
]
