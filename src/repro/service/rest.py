"""REST control surface over a :class:`CampaignCoordinator`.

A deliberately small, dependency-free HTTP layer on the stdlib's threading
``http.server`` — every route is a thin JSON translation of one
coordinator method, so the protocol semantics (leases, idempotent acks,
reduction) live in exactly one place and the in-process and remote paths
cannot drift.

Routes::

    GET  /health                                     liveness + version
    GET  /metrics                                    Prometheus text exposition
    GET  /campaigns                                  submitted campaign ids
    POST /campaigns               {"spec": {...}}    submit (idempotent)
    GET  /campaigns/<id>                             scheduling progress
    GET  /campaigns/<id>/spec                        normalized spec document
    GET  /campaigns/<id>/chunks                      per-chunk states
    GET  /campaigns/<id>/events                      progress log
    GET  /campaigns/<id>/trace                       merged worker span records
    GET  /campaigns/<id>/tables                      reduced tables (409 until
                                                     the campaign completes)
    POST /campaigns/<id>/claim    {"worker_id"}      lease the next chunk
    POST /campaigns/<id>/chunks/<cid>/heartbeat      renew a lease
    POST /campaigns/<id>/chunks/<cid>/ack            complete a chunk

Security note: the service is **unauthenticated** and meant for loopback
or a trusted LAN only — bind it accordingly (the default
:class:`~repro.common.config.ServiceConfig` listens on ``127.0.0.1``).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.api.spec import CampaignSpec
from repro.common.exceptions import (
    CampaignIncompleteError,
    ConfigurationError,
    ServiceError,
)
from repro.service.coordinator import CampaignCoordinator

__all__ = ["CoordinatorServer"]

#: Largest accepted request body; a campaign spec is a few KB, so anything
#: beyond this is a client error (or abuse), not a legitimate submission.
_MAX_BODY_BYTES = 4 * 1024 * 1024

_CAMPAIGN = re.compile(r"^/campaigns/([0-9a-f]+)$")
_SUBRESOURCE = re.compile(
    r"^/campaigns/([0-9a-f]+)/(spec|chunks|events|trace|tables)$"
)
_CLAIM = re.compile(r"^/campaigns/([0-9a-f]+)/claim$")
_CHUNK_ACTION = re.compile(
    r"^/campaigns/([0-9a-f]+)/chunks/([A-Za-z0-9_.-]+)/(heartbeat|ack)$"
)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the server's coordinator."""

    # Set by CoordinatorServer when the handler class is bound.
    coordinator: CampaignCoordinator

    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr chatter; the coordinator keeps its
        own per-campaign event log."""

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        if length == 0:
            return {}
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._get()
        except ServiceError as error:
            self._error(404, str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, f"{type(error).__name__}: {error}")

    def _get(self) -> None:
        coordinator = self.coordinator
        if self.path == "/health":
            self._reply(200, coordinator.health())
            return
        if self.path == "/metrics":
            self._reply_text(
                200,
                coordinator.metrics_render(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if self.path == "/campaigns":
            self._reply(200, {"campaigns": coordinator.campaign_ids()})
            return
        match = _CAMPAIGN.match(self.path)
        if match:
            self._reply(200, coordinator.progress(match.group(1)))
            return
        match = _SUBRESOURCE.match(self.path)
        if match:
            campaign_id, resource = match.groups()
            if resource == "spec":
                self._reply(200, {"spec": coordinator.spec_mapping(campaign_id)})
            elif resource == "chunks":
                self._reply(200, {"chunks": coordinator.chunk_states(campaign_id)})
            elif resource == "events":
                self._reply(200, {"events": coordinator.events(campaign_id)})
            elif resource == "trace":
                self._reply(200, {"spans": coordinator.trace(campaign_id)})
            else:  # tables
                try:
                    self._reply(200, {"tables": coordinator.tables(campaign_id)})
                except CampaignIncompleteError as error:
                    self._error(409, str(error))
            return
        self._error(404, f"no such resource: {self.path}")

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            payload = self._body()
        except ValueError as error:
            self._error(400, f"malformed request body: {error}")
            return
        try:
            self._post(payload)
        except ConfigurationError as error:
            self._error(400, str(error))
        except ServiceError as error:
            self._error(404, str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, f"{type(error).__name__}: {error}")

    def _post(self, payload: Dict[str, Any]) -> None:
        coordinator = self.coordinator
        if self.path == "/campaigns":
            if "spec" not in payload:
                self._error(400, "submission body needs a 'spec' mapping")
                return
            spec = CampaignSpec.from_mapping(payload["spec"])
            campaign_id = coordinator.submit(spec)
            progress = coordinator.progress(campaign_id)
            self._reply(
                200,
                {
                    "campaign_id": campaign_id,
                    "n_chunks": progress["n_chunks"],
                    "n_runs": progress["n_runs"],
                },
            )
            return
        match = _CLAIM.match(self.path)
        if match:
            campaign_id = match.group(1)
            worker_id = str(payload.get("worker_id") or "anonymous")
            chunk = coordinator.claim(campaign_id, worker_id)
            self._reply(
                200,
                {
                    "chunk": chunk,
                    "complete": coordinator.progress(campaign_id)["complete"],
                },
            )
            return
        match = _CHUNK_ACTION.match(self.path)
        if match:
            campaign_id, chunk_id, action = match.groups()
            worker_id = str(payload.get("worker_id") or "anonymous")
            if action == "heartbeat":
                alive = coordinator.heartbeat(campaign_id, chunk_id, worker_id)
                self._reply(200, {"alive": alive})
            else:  # ack
                spans = payload.get("spans")
                response = coordinator.ack(
                    campaign_id,
                    chunk_id,
                    worker_id,
                    n_simulated=int(payload.get("n_simulated", 0)),
                    n_cache_hits=int(payload.get("n_cache_hits", 0)),
                    spans=spans if isinstance(spans, list) else None,
                )
                self._reply(200, response)
            return
        self._error(404, f"no such resource: {self.path}")


class CoordinatorServer:
    """A threaded HTTP server bound to one coordinator.

    Usable blocking (:meth:`serve_forever`, the ``--serve`` CLI mode) or in
    the background (:meth:`start` / :meth:`shutdown`, tests and the smoke
    harness).  Binding ``port=0`` lets the OS pick a free port —
    :attr:`url` reports the actual one.
    """

    def __init__(
        self,
        coordinator: CampaignCoordinator,
        host: str = "127.0.0.1",
        port: int = 8765,
    ):
        self.coordinator = coordinator
        handler = type("BoundHandler", (_Handler,), {"coordinator": coordinator})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) actually bound."""
        return self._server.server_address[0], self._server.server_address[1]

    @property
    def url(self) -> str:
        """The coordinator's base URL."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "CoordinatorServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CoordinatorServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
