"""Deterministic sharding of a campaign spec into claimable work chunks.

The distributed service never ships simulation data between hosts — only
*coordinates*.  That works because everything a worker needs to execute a
slice of a campaign is derivable, deterministically, from the spec itself:

* :func:`campaign_run_specs` flattens a :class:`~repro.api.spec.CampaignSpec`
  into the exact ordered list of :class:`~repro.experiments.parallel.RunSpec`
  a single-host :meth:`~repro.api.session.Session.run` would execute —
  calibration runs first, then every expanded scenario's repeats, per sweep
  seed.  Coordinator and workers derive the same list independently, so a
  chunk on the wire is just an index range.
* :func:`shard_campaign` splits that list into :class:`WorkChunk` slices
  sized by the batch-aware
  :attr:`~repro.common.config.ParallelConfig.resolved_simulation_chunk_size`
  (or the ``[service]`` section's explicit ``chunk_size``), so a ``"batch"``
  backend worker always claims whole vectorized batches.
* :func:`campaign_fingerprint` hashes the spec's canonical mapping; it is
  both the campaign id (submitting the same spec twice is idempotent) and
  the wire-level guard that a worker and its coordinator agree on what a
  chunk's indices mean.

Results land in the shared NPZ cache under each run's existing
:meth:`~repro.experiments.parallel.RunSpec.cache_key`, which makes chunk
execution idempotent: re-running a chunk (after a lost lease, a worker
crash or a coordinator restart) only simulates the runs whose entries are
missing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.api.spec import CampaignSpec
from repro.common.exceptions import ConfigurationError
from repro.experiments.parallel import (
    RunSpec,
    calibration_specs,
    scenario_specs,
)

__all__ = [
    "WorkChunk",
    "campaign_run_specs",
    "campaign_fingerprint",
    "shard_campaign",
]


def campaign_run_specs(spec: CampaignSpec) -> List[RunSpec]:
    """The ordered run specs a single-host execution of ``spec`` simulates.

    Per sweep seed: the calibration campaign, then every expanded
    scenario's repeated evaluation runs — exactly the specs (and therefore
    exactly the cache keys) :meth:`Session.run` produces, which is what
    makes distributed results indistinguishable from single-host ones.
    """
    specs: List[RunSpec] = []
    scenarios = spec.expanded_scenarios()
    for seed in spec.seeds():
        experiment = spec.experiment_for(seed)
        specs.extend(calibration_specs(experiment))
        for scenario in scenarios:
            specs.extend(scenario_specs(experiment, scenario))
    return specs


def campaign_fingerprint(spec: CampaignSpec) -> str:
    """A stable digest identifying a campaign's full content.

    Hashes the spec's canonical mapping form, so a spec loaded from TOML,
    one parsed from a JSON request body and one built in code all
    fingerprint identically.  Doubles as the campaign id.
    """
    blob = json.dumps(
        spec.to_mapping(), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class WorkChunk:
    """One claimable slice of a campaign's flattened run-spec list.

    The wire form carries only indices plus the campaign fingerprint; the
    worker re-derives the actual :class:`RunSpec` objects from the spec
    document and takes ``specs[start:stop]``.
    """

    chunk_id: str
    start: int
    stop: int
    fingerprint: str

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ConfigurationError(
                f"chunk [{self.start}, {self.stop}) is empty or negative"
            )

    @property
    def n_runs(self) -> int:
        """Number of runs this chunk covers."""
        return self.stop - self.start

    def specs_of(self, spec: CampaignSpec) -> List[RunSpec]:
        """Materialize this chunk's run specs from its campaign spec.

        Refuses a spec whose fingerprint does not match the chunk's — the
        guard against a worker pairing a chunk descriptor with a stale or
        differently-configured spec document.
        """
        fingerprint = campaign_fingerprint(spec)
        if fingerprint != self.fingerprint:
            raise ConfigurationError(
                f"chunk {self.chunk_id} belongs to campaign "
                f"{self.fingerprint}, not {fingerprint}; refetch the spec"
            )
        specs = campaign_run_specs(spec)
        if self.stop > len(specs):
            raise ConfigurationError(
                f"chunk {self.chunk_id} ends at run {self.stop} but the "
                f"campaign only has {len(specs)} runs"
            )
        return specs[self.start : self.stop]

    def to_mapping(self) -> Dict[str, Any]:
        """The JSON-safe wire form of this chunk."""
        return {
            "chunk_id": self.chunk_id,
            "start": self.start,
            "stop": self.stop,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "WorkChunk":
        """Rebuild a chunk from its wire form."""
        return cls(
            chunk_id=str(mapping["chunk_id"]),
            start=int(mapping["start"]),
            stop=int(mapping["stop"]),
            fingerprint=str(mapping["fingerprint"]),
        )


def shard_campaign(
    spec: CampaignSpec, chunk_size: Optional[int] = None
) -> List[WorkChunk]:
    """Split a campaign into claimable chunks.

    ``chunk_size`` defaults to the ``[service]`` section's setting, which
    itself falls back to the execution plan's batch-aware
    :attr:`~repro.common.config.ParallelConfig.resolved_simulation_chunk_size`
    — so on the ``"batch"`` backend every chunk holds whole vectorized
    batches and the lockstep speedup survives distribution.
    """
    if chunk_size is None:
        chunk_size = spec.service.resolved_chunk_size(spec.experiment.parallel)
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ConfigurationError("chunk_size must be >= 1")
    n_runs = len(campaign_run_specs(spec))
    fingerprint = campaign_fingerprint(spec)
    chunks = []
    for index, start in enumerate(range(0, n_runs, chunk_size)):
        chunks.append(
            WorkChunk(
                chunk_id=f"c{index:04d}",
                start=start,
                stop=min(start + chunk_size, n_runs),
                fingerprint=fingerprint,
            )
        )
    return chunks
