"""The campaign coordinator: chunk scheduling, leases and reduction.

:class:`CampaignCoordinator` owns the scheduling state of submitted
campaigns — never simulation data.  A submitted
:class:`~repro.api.spec.CampaignSpec` is normalized onto the coordinator's
shared cache directory and sharded into :class:`~repro.service.chunks.
WorkChunk` slices; workers then drive the claim → simulate → ack protocol:

1. **claim** — the oldest pending chunk is leased to the worker for
   ``lease_seconds``.  Expired leases are reaped lazily on every claim and
   progress call, so a lost worker's chunks return to the pending pool
   without any background thread.
2. **heartbeat** — a busy worker renews its lease; a heartbeat on a lease
   the coordinator already reclaimed is refused, telling the worker to
   abandon the chunk (its results still land in the cache and are never
   wasted).
3. **ack** — before marking a chunk done the coordinator verifies that
   every run's NPZ entry actually exists in the shared cache; a partial
   chunk goes back to pending.  Acks are idempotent and ownership-blind:
   results live under content-derived cache keys, so whoever completed the
   chunk, completed it.

When every chunk is done, :meth:`tables` reduces the campaign by running
the ordinary in-process :class:`~repro.api.session.Session` over the now
fully-warm shared cache — the reduction therefore *is* the single-host
path, which is what makes distributed tables bitwise-identical to
``api.run`` on the same spec, and what makes any loss recoverable: a
re-submitted campaign only simulates the chunks whose cache entries are
missing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro._version import __version__
from repro.api.session import CampaignResult, Session
from repro.api.spec import CampaignSpec
from repro.common.exceptions import (
    CampaignIncompleteError,
    ConfigurationError,
    ServiceError,
)
from repro.experiments.parallel import ResultCache
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span
from repro.service.chunks import (
    WorkChunk,
    campaign_fingerprint,
    campaign_run_specs,
    shard_campaign,
)
from repro.service.journal import CoordinatorJournal

__all__ = [
    "ChunkRecord",
    "CampaignRecord",
    "CampaignCoordinator",
    "CoordinatorMetrics",
]

_LOG = get_logger("service")

#: Chunk lifecycle states.
PENDING, LEASED, DONE = "pending", "leased", "done"


class CoordinatorMetrics:
    """The coordinator's ``/metrics`` bundle (Prometheus text exposition).

    Counters are incremented at the protocol events themselves; the
    chunk-state and worker gauges are recomputed from the scheduling state
    on every scrape (:meth:`CampaignCoordinator.metrics_render`), so they
    can never drift from the records they describe.
    """

    def __init__(self):
        self.registry = MetricsRegistry()
        self.campaigns = self.registry.gauge(
            "service_campaigns", "Campaigns the coordinator tracks."
        )
        self.chunks_pending = self.registry.gauge(
            "service_chunks_pending", "Chunks waiting to be claimed."
        )
        self.chunks_leased = self.registry.gauge(
            "service_chunks_leased", "Chunks currently leased to workers."
        )
        self.chunks_done = self.registry.gauge(
            "service_chunks_done", "Chunks acknowledged complete."
        )
        self.workers_active = self.registry.gauge(
            "service_workers_active", "Distinct workers holding a lease."
        )
        self.submissions = self.registry.counter(
            "service_submissions_total", "Campaign submissions (incl. re-submits)."
        )
        self.claims = self.registry.counter(
            "service_claims_total", "Chunk leases granted."
        )
        self.heartbeats = self.registry.counter(
            "service_heartbeats_total", "Lease renewals granted."
        )
        self.acks = self.registry.counter(
            "service_acks_total", "Chunk acknowledgements accepted."
        )
        self.acks_rejected = self.registry.counter(
            "service_acks_rejected_total",
            "Chunk acknowledgements rejected (results missing from cache).",
        )
        self.leases_reaped = self.registry.counter(
            "service_leases_reaped_total",
            "Expired leases returned to the pending pool.",
        )
        # Journal gauges mirror the Journal's own counters on every scrape
        # (recomputed in metrics_render, like the chunk-state gauges), so
        # they can never drift from the file they describe.
        self.journal_appends = self.registry.gauge(
            "service_journal_appends",
            "Scheduling events appended to the durable journal.",
        )
        self.journal_records_replayed = self.registry.gauge(
            "service_journal_records_replayed",
            "Journal records applied during restart replay.",
        )
        self.journal_torn_tails = self.registry.gauge(
            "service_journal_torn_tails",
            "Torn journal tails healed on replay.",
        )
        self.journal_compactions = self.registry.gauge(
            "service_journal_compactions",
            "Journal compactions (snapshot rewrites).",
        )

    def render(self) -> str:
        """The full ``/metrics`` document (text exposition format)."""
        return self.registry.render()

    def snapshot(self) -> Dict[str, float]:
        """Scalar metric values as a mapping (tests and health payloads)."""
        return self.registry.snapshot()


@dataclass
class ChunkRecord:
    """Scheduling state of one chunk."""

    chunk: WorkChunk
    state: str = PENDING
    worker_id: Optional[str] = None
    lease_deadline: Optional[float] = None
    attempts: int = 0
    n_simulated: int = 0
    n_cache_hits: int = 0

    def to_mapping(self) -> Dict[str, Any]:
        """The JSON-safe status form of this record."""
        return {
            **self.chunk.to_mapping(),
            "state": self.state,
            "worker_id": self.worker_id,
            "attempts": self.attempts,
            "n_simulated": self.n_simulated,
            "n_cache_hits": self.n_cache_hits,
        }


@dataclass
class CampaignRecord:
    """Everything the coordinator tracks about one submitted campaign."""

    campaign_id: str
    spec: CampaignSpec
    chunks: List[ChunkRecord]
    #: The flattened run-spec list, kept so ack verification can map any
    #: chunk to its cache paths without re-deriving the whole campaign.
    run_specs: List[Any] = field(default_factory=list)
    events: List[str] = field(default_factory=list)
    result: Optional[CampaignResult] = None
    #: Span records shipped by workers in their acks (when the campaign's
    #: ``[obs]`` section enables tracing); merged into one campaign trace
    #: via ``GET /campaigns/<id>/trace``.
    spans: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        """Total runs across every chunk."""
        return len(self.run_specs)

    @property
    def is_complete(self) -> bool:
        """Whether every chunk has been acknowledged."""
        return all(record.state == DONE for record in self.chunks)


class CampaignCoordinator:
    """Shards campaigns, leases chunks to workers and reduces results.

    Parameters
    ----------
    cache_dir:
        The shared result store — a directory every worker can write to
        (same filesystem path on all hosts: a local path for single-host
        fan-out, an NFS/bind mount for a LAN).  Submitted specs are
        normalized onto it, whatever their own ``cache_dir`` said.
    lease_seconds:
        Default chunk lease duration; a spec's ``[service]`` section
        overrides it per campaign.
    clock:
        Monotonic time source, injectable for tests.
    journal:
        Optional path (or prebuilt :class:`CoordinatorJournal`) of the
        durable scheduling journal.  Every submit/claim/heartbeat/ack/reap
        is appended before the request is answered; on construction the
        journal is replayed, so a restarted coordinator resumes with its
        chunk attempt counts and worker history intact (chunks that were
        leased when the old process died return to pending — their
        monotonic deadlines did not survive it).  ``None`` (the default)
        keeps the coordinator purely in-memory, as before.
    journal_fsync:
        Journal durability policy: ``"always"`` (default) or ``"never"``.

    All public methods are thread-safe (the REST surface serves each
    request on its own thread).
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        lease_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        journal: Optional[Union[str, Path, CoordinatorJournal]] = None,
        journal_fsync: str = "always",
    ):
        self.cache_dir = str(cache_dir)
        self.lease_seconds = lease_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._campaigns: Dict[str, CampaignRecord] = {}
        self.metrics = CoordinatorMetrics()
        if journal is None or isinstance(journal, CoordinatorJournal):
            self.journal = journal
        else:
            self.journal = CoordinatorJournal(journal, fsync=journal_fsync)
        if self.journal is not None:
            self._replay_journal()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def normalize(self, spec: CampaignSpec) -> CampaignSpec:
        """A submitted spec, rebased onto the shared cache directory.

        Normalization touches only the execution plan (which never affects
        results), so every spec differing merely in its local cache path
        maps to the same campaign id.
        """
        parallel = replace(
            spec.experiment.parallel, cache_dir=self.cache_dir, cache_enabled=True
        )
        return spec.with_experiment(spec.experiment.with_parallel(parallel))

    def submit(self, spec: CampaignSpec) -> str:
        """Register a campaign; returns its id.  Idempotent.

        Re-submitting a spec already known to this coordinator returns the
        existing campaign unchanged (its chunk states survive); after a
        coordinator restart the chunks start over as pending, and the
        shared cache turns every already-simulated run into a hit.
        """
        if spec.live.enabled:
            raise ConfigurationError(
                "live early-stop campaigns are not distributable yet; "
                "disable the spec's [live] section or run in-process"
            )
        spec = self.normalize(spec)
        campaign_id = campaign_fingerprint(spec)
        with self._lock:
            record = self._campaigns.get(campaign_id)
            if record is None:
                record = self._register_locked(campaign_id, spec)
                if self.journal is not None:
                    self.journal.record_submit(campaign_id, spec.to_mapping())
                self._log(
                    record,
                    f"submitted: {spec.name!r}, {record.n_runs} runs in "
                    f"{len(record.chunks)} chunks",
                )
            else:
                self._log(record, "re-submitted (idempotent)")
            self.metrics.submissions.increment()
        return campaign_id

    def _register_locked(
        self, campaign_id: str, spec: CampaignSpec
    ) -> CampaignRecord:
        """Create the scheduling record of a new campaign (lock held)."""
        record = CampaignRecord(
            campaign_id=campaign_id,
            spec=spec,
            chunks=[ChunkRecord(chunk=chunk) for chunk in shard_campaign(spec)],
            run_specs=campaign_run_specs(spec),
        )
        self._campaigns[campaign_id] = record
        return record

    # ------------------------------------------------------------------
    # Worker protocol
    # ------------------------------------------------------------------
    def claim(
        self, campaign_id: str, worker_id: str
    ) -> Optional[Dict[str, Any]]:
        """Lease the next pending chunk to ``worker_id``.

        Returns the chunk's wire mapping (with its lease duration), or
        ``None`` when nothing is claimable — either the campaign is
        complete or every remaining chunk is currently leased out.
        """
        with self._lock:
            record = self._require(campaign_id)
            self._reap(record)
            lease = self._lease_of(record)
            for chunk_record in record.chunks:
                if chunk_record.state != PENDING:
                    continue
                chunk_record.state = LEASED
                chunk_record.worker_id = str(worker_id)
                chunk_record.lease_deadline = self._clock() + lease
                chunk_record.attempts += 1
                self._log(
                    record,
                    f"claim: {chunk_record.chunk.chunk_id} -> {worker_id} "
                    f"(attempt {chunk_record.attempts}, lease {lease:g} s)",
                )
                self.metrics.claims.increment()
                if self.journal is not None:
                    self.journal.record_claim(
                        campaign_id,
                        chunk_record.chunk.chunk_id,
                        str(worker_id),
                    )
                return {
                    **chunk_record.chunk.to_mapping(),
                    "campaign_id": campaign_id,
                    "lease_seconds": lease,
                }
            return None

    def heartbeat(self, campaign_id: str, chunk_id: str, worker_id: str) -> bool:
        """Renew a worker's lease on a chunk.

        Returns ``False`` when the lease is no longer the worker's to renew
        (expired and reclaimed, or the chunk already completed) — the
        worker should stop executing the chunk.
        """
        with self._lock:
            record = self._require(campaign_id)
            self._reap(record)
            chunk_record = self._chunk(record, chunk_id)
            if (
                chunk_record.state != LEASED
                or chunk_record.worker_id != str(worker_id)
            ):
                return False
            chunk_record.lease_deadline = self._clock() + self._lease_of(record)
            self.metrics.heartbeats.increment()
            if self.journal is not None:
                self.journal.record_heartbeat(
                    campaign_id, chunk_id, str(worker_id)
                )
            return True

    def ack(
        self,
        campaign_id: str,
        chunk_id: str,
        worker_id: str,
        n_simulated: int = 0,
        n_cache_hits: int = 0,
        spans: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Mark a chunk complete, after verifying its results are on disk.

        Every run of the chunk must have an NPZ entry in the shared cache;
        otherwise the chunk goes back to pending (and the ack reports how
        many entries were missing).  Acks are idempotent — a second ack of
        a done chunk is accepted without changing anything — and
        ownership-blind, because a result under the right cache key is
        correct no matter which worker's lease produced it.  ``spans`` is
        the worker's drained trace buffer (when the campaign traces); it is
        absorbed into the campaign's merged trace (:meth:`trace`).
        """
        with self._lock:
            record = self._require(campaign_id)
            chunk_record = self._chunk(record, chunk_id)
            if chunk_record.state == DONE:
                return {"accepted": True, "missing": 0, "complete": record.is_complete}
            missing = self._missing_results(record, chunk_record.chunk)
            if missing:
                # Only the current lease holder's failed ack releases the
                # chunk: a rejected ack from an evicted worker must not
                # clear a lease that has since been reassigned.
                if chunk_record.worker_id == str(worker_id):
                    chunk_record.state = PENDING
                    chunk_record.worker_id = None
                    chunk_record.lease_deadline = None
                self._log(
                    record,
                    f"ack rejected: {chunk_id} from {worker_id} "
                    f"({missing} results missing from the shared cache)",
                )
                self.metrics.acks_rejected.increment()
                if self.journal is not None:
                    self.journal.record_ack(
                        campaign_id, chunk_id, str(worker_id),
                        accepted=False, n_simulated=0, n_cache_hits=0,
                    )
                return {"accepted": False, "missing": missing, "complete": False}
            if spans:
                record.spans.extend(
                    dict(span) for span in spans if isinstance(span, dict)
                )
            chunk_record.state = DONE
            chunk_record.worker_id = str(worker_id)
            chunk_record.lease_deadline = None
            chunk_record.n_simulated = int(n_simulated)
            chunk_record.n_cache_hits = int(n_cache_hits)
            complete = record.is_complete
            self._log(
                record,
                f"ack: {chunk_id} by {worker_id} "
                f"({n_simulated} simulated, {n_cache_hits} cached)"
                + ("; campaign complete" if complete else ""),
            )
            self.metrics.acks.increment()
            if self.journal is not None:
                self.journal.record_ack(
                    campaign_id, chunk_id, str(worker_id),
                    accepted=True,
                    n_simulated=int(n_simulated),
                    n_cache_hits=int(n_cache_hits),
                )
            return {"accepted": True, "missing": 0, "complete": complete}

    # ------------------------------------------------------------------
    # Introspection and reduction
    # ------------------------------------------------------------------
    def campaign_ids(self) -> List[str]:
        """Ids of every submitted campaign, in submission order."""
        with self._lock:
            return list(self._campaigns)

    def spec_mapping(self, campaign_id: str) -> Dict[str, Any]:
        """The normalized spec document of a campaign (wire form)."""
        with self._lock:
            return self._require(campaign_id).spec.to_mapping()

    def progress(self, campaign_id: str) -> Dict[str, Any]:
        """Scheduling progress of a campaign."""
        with self._lock:
            record = self._require(campaign_id)
            self._reap(record)
            states = [chunk.state for chunk in record.chunks]
            n_done = states.count(DONE)
            chunk_runs_done = sum(
                chunk.chunk.n_runs
                for chunk in record.chunks
                if chunk.state == DONE
            )
            return {
                "campaign_id": campaign_id,
                "name": record.spec.name,
                "complete": record.is_complete,
                "n_runs": record.n_runs,
                "n_runs_done": chunk_runs_done,
                "n_chunks": len(states),
                "n_pending": states.count(PENDING),
                "n_leased": states.count(LEASED),
                "n_done": n_done,
                "n_simulated": sum(c.n_simulated for c in record.chunks),
                "n_cache_hits": sum(c.n_cache_hits for c in record.chunks),
            }

    def chunk_states(self, campaign_id: str) -> List[Dict[str, Any]]:
        """Per-chunk scheduling state of a campaign."""
        with self._lock:
            record = self._require(campaign_id)
            self._reap(record)
            return [chunk.to_mapping() for chunk in record.chunks]

    def events(self, campaign_id: str) -> List[str]:
        """The campaign's progress log, oldest first."""
        with self._lock:
            return list(self._require(campaign_id).events)

    def trace(self, campaign_id: str) -> List[Dict[str, Any]]:
        """The campaign's merged span records, as shipped by worker acks.

        Each record carries the worker id in its ``process`` field, so the
        merged list renders as one per-worker-lane timeline (see
        :func:`repro.obs.trace.chrome_trace`).
        """
        with self._lock:
            return [dict(span) for span in self._require(campaign_id).spans]

    def metrics_render(self) -> str:
        """The ``/metrics`` document, with state gauges freshly recomputed."""
        with self._lock:
            self._refresh_gauges()
        return self.metrics.render()

    def result(self, campaign_id: str) -> CampaignResult:
        """Reduce a complete campaign into its :class:`CampaignResult`.

        The reduction runs the ordinary in-process session over the shared
        cache — every simulation is a cache hit, so only NPZ loads, model
        fitting and scoring execute here, and the produced tables are the
        single-host tables by construction.  The result is memoized.
        """
        with self._lock:
            record = self._require(campaign_id)
            self._reap(record)
            if not record.is_complete:
                raise CampaignIncompleteError(
                    f"campaign {campaign_id} is not complete "
                    f"({sum(c.state == DONE for c in record.chunks)}/"
                    f"{len(record.chunks)} chunks done)"
                )
            if record.result is not None:
                return record.result
            spec = record.spec
        # Reduce outside the lock: scoring a large campaign may take a
        # while and must not block claims/heartbeats of other campaigns.
        result = Session(spec).run()
        with self._lock:
            if record.result is None:
                record.result = result
                self._log(record, "reduced: tables built from the shared cache")
            return record.result

    def tables(self, campaign_id: str) -> Dict[str, List[Dict[str, Any]]]:
        """The reduced result tables of a complete campaign (JSON-safe)."""
        return self.result(campaign_id).tables()

    def health(self) -> Dict[str, Any]:
        """Liveness snapshot for the ``/health`` endpoint."""
        with self._lock:
            return {
                "status": "ok",
                "version": __version__,
                "cache_dir": self.cache_dir,
                "n_campaigns": len(self._campaigns),
                "journal": (
                    str(self.journal.path) if self.journal is not None else None
                ),
            }

    # ------------------------------------------------------------------
    # Journal replay (construction time)
    # ------------------------------------------------------------------
    def _replay_journal(self) -> None:
        """Rebuild scheduling state from the journal, then compact it.

        Chunks left leased by the dead process return to pending (their
        monotonic deadlines are meaningless here) with attempt counts and
        event history preserved; the replayed journal is then rewritten
        as one snapshot per campaign so restart cost tracks live state,
        not campaign history.
        """
        with span("journal.replay", path=str(self.journal.path)):
            records = self.journal.replay()
            with self._lock:
                skipped = 0
                for record in records:
                    skipped += 0 if self._apply_replayed_locked(record) else 1
                revived = 0
                for campaign in self._campaigns.values():
                    for chunk_record in campaign.chunks:
                        if chunk_record.state == LEASED:
                            chunk_record.state = PENDING
                            chunk_record.worker_id = None
                            chunk_record.lease_deadline = None
                            revived += 1
                for campaign in self._campaigns.values():
                    self._log(
                        campaign,
                        "journal replay: restored "
                        f"{sum(c.state == DONE for c in campaign.chunks)} done"
                        f"/{len(campaign.chunks)} chunks",
                    )
                if records:
                    self._compact_journal_locked()
        if records:
            _LOG.info(
                f"journal replayed: {len(records)} records, "
                f"{len(self._campaigns)} campaigns, {revived} leases "
                f"returned to pending, {skipped} records skipped"
            )

    def _apply_replayed_locked(self, record: Dict[str, Any]) -> bool:
        """Apply one journal record; returns False when it was skipped."""
        event = record.get("event")
        if event in ("submit", "snapshot"):
            spec = CampaignSpec.from_mapping(record["spec"])
            campaign_id = record["campaign_id"]
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                campaign = self._register_locked(campaign_id, spec)
            if event == "snapshot":
                self._apply_snapshot_locked(campaign, record)
            return True
        campaign = self._campaigns.get(record.get("campaign_id"))
        if campaign is None:
            return False
        if event == "heartbeat":
            return True  # only extended a dead process's deadline
        try:
            chunk_record = self._chunk(campaign, record.get("chunk_id"))
        except ServiceError:
            return False
        if event == "claim":
            chunk_record.state = LEASED
            chunk_record.worker_id = record.get("worker_id")
            chunk_record.lease_deadline = None
            chunk_record.attempts += 1
            return True
        if event == "ack":
            if record.get("accepted"):
                chunk_record.state = DONE
                chunk_record.worker_id = record.get("worker_id")
                chunk_record.lease_deadline = None
                chunk_record.n_simulated = int(record.get("n_simulated", 0))
                chunk_record.n_cache_hits = int(record.get("n_cache_hits", 0))
            else:
                chunk_record.state = PENDING
                chunk_record.worker_id = None
                chunk_record.lease_deadline = None
            return True
        if event == "reap":
            if chunk_record.state == LEASED:
                chunk_record.state = PENDING
                chunk_record.worker_id = None
                chunk_record.lease_deadline = None
            return True
        return False  # unknown event type: tolerate forward schemas

    def _apply_snapshot_locked(
        self, campaign: CampaignRecord, record: Dict[str, Any]
    ) -> None:
        by_id = {c.chunk.chunk_id: c for c in campaign.chunks}
        for entry in record.get("chunks", []):
            chunk_record = by_id.get(entry.get("chunk_id"))
            if chunk_record is None:
                continue
            state = entry.get("state", PENDING)
            chunk_record.state = DONE if state == DONE else PENDING
            chunk_record.worker_id = (
                entry.get("worker_id") if state == DONE else None
            )
            chunk_record.lease_deadline = None
            chunk_record.attempts = int(entry.get("attempts", 0))
            chunk_record.n_simulated = int(entry.get("n_simulated", 0))
            chunk_record.n_cache_hits = int(entry.get("n_cache_hits", 0))

    def _compact_journal_locked(self) -> None:
        """Rewrite the journal as one snapshot record per campaign."""
        snapshots = [
            CoordinatorJournal.snapshot_record(
                campaign.campaign_id,
                campaign.spec.to_mapping(),
                [chunk.to_mapping() for chunk in campaign.chunks],
            )
            for campaign in self._campaigns.values()
        ]
        self.journal.compact(snapshots)

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _require(self, campaign_id: str) -> CampaignRecord:
        record = self._campaigns.get(campaign_id)
        if record is None:
            raise ServiceError(f"unknown campaign {campaign_id!r}")
        return record

    @staticmethod
    def _chunk(record: CampaignRecord, chunk_id: str) -> ChunkRecord:
        for chunk_record in record.chunks:
            if chunk_record.chunk.chunk_id == chunk_id:
                return chunk_record
        raise ServiceError(
            f"campaign {record.campaign_id} has no chunk {chunk_id!r}"
        )

    def _lease_of(self, record: CampaignRecord) -> float:
        if self.lease_seconds is not None:
            return float(self.lease_seconds)
        return float(record.spec.service.lease_seconds)

    def _reap(self, record: CampaignRecord) -> None:
        """Return expired leases to the pending pool."""
        now = self._clock()
        for chunk_record in record.chunks:
            if (
                chunk_record.state == LEASED
                and chunk_record.lease_deadline is not None
                and chunk_record.lease_deadline < now
            ):
                self._log(
                    record,
                    f"lease expired: {chunk_record.chunk.chunk_id} "
                    f"(was {chunk_record.worker_id}); back to pending",
                )
                evicted = chunk_record.worker_id
                chunk_record.state = PENDING
                chunk_record.worker_id = None
                chunk_record.lease_deadline = None
                self.metrics.leases_reaped.increment()
                if self.journal is not None:
                    self.journal.record_reap(
                        record.campaign_id,
                        chunk_record.chunk.chunk_id,
                        evicted,
                    )

    def _refresh_gauges(self) -> None:
        """Recompute the chunk-state gauges from the scheduling records."""
        states = [
            chunk.state
            for record in self._campaigns.values()
            for chunk in record.chunks
        ]
        workers = {
            chunk.worker_id
            for record in self._campaigns.values()
            for chunk in record.chunks
            if chunk.state == LEASED and chunk.worker_id is not None
        }
        self.metrics.campaigns.set(len(self._campaigns))
        self.metrics.chunks_pending.set(states.count(PENDING))
        self.metrics.chunks_leased.set(states.count(LEASED))
        self.metrics.chunks_done.set(states.count(DONE))
        self.metrics.workers_active.set(len(workers))
        if self.journal is not None:
            journal = self.journal.journal
            self.metrics.journal_appends.set(journal.appends)
            self.metrics.journal_records_replayed.set(journal.records_replayed)
            self.metrics.journal_torn_tails.set(journal.torn_tails)
            self.metrics.journal_compactions.set(journal.compactions)

    def _missing_results(self, record: CampaignRecord, chunk: WorkChunk) -> int:
        """How many of a chunk's runs have no entry in the shared cache."""
        cache = ResultCache(self.cache_dir)
        specs = record.run_specs[chunk.start : chunk.stop]
        return sum(1 for spec in specs if not cache.path_for(spec).is_file())

    def _log(self, record: CampaignRecord, message: str) -> None:
        record.events.append(f"[{record.campaign_id}] {message}")
        _LOG.info(message, extra={"campaign": record.campaign_id})
