"""The coordinator's scheduling journal: durable protocol history.

Every state-changing protocol event — submit, claim, heartbeat, ack,
reap — is appended to a :class:`~repro.common.journal.Journal` before the
coordinator answers the request, so a coordinator killed mid-campaign can
be restarted with the same ``--journal`` path and resume with its chunk
attempt counts and worker history intact.  The shared NPZ cache already
made the *results* recoverable; the journal makes the *scheduling state*
recoverable too.

Replay semantics (:meth:`CampaignCoordinator._replay_journal`):

* ``submit`` carries the full normalized spec mapping, so the campaign is
  re-registered exactly as submitted (same fingerprint, same chunks).
* ``claim`` / ``ack`` / ``reap`` move the chunk records through the same
  transitions the live protocol did.  Heartbeats only extend monotonic
  lease deadlines, which are meaningless in a new process — they replay
  as worker-history no-ops.
* A chunk still leased at the end of replay returns to *pending* (its
  deadline died with the old process) but keeps its attempt count and
  last worker — the evicted worker's eventual heartbeat is refused and
  its ack remains cache-verified idempotent, exactly as if the lease had
  expired.

After a successful replay the journal is compacted to one ``snapshot``
record per campaign (the fixed point of replay), so restart cost stays
proportional to live state, not to campaign history.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.common.journal import Journal

__all__ = ["CoordinatorJournal"]

#: Journal record schema version; bump when record shapes change.
SCHEMA_VERSION = 1


class CoordinatorJournal:
    """Typed record constructors over the raw checksummed journal.

    Centralizes the wire shape of every scheduling event so the
    coordinator's writer and replayer (and the tests) cannot drift apart.
    """

    def __init__(
        self, path: Union[str, Path, Journal], *, fsync: str = "always"
    ):
        if isinstance(path, Journal):
            self._journal = path
        else:
            self._journal = Journal(path, fsync=fsync)

    @property
    def path(self) -> Path:
        return self._journal.path

    @property
    def journal(self) -> Journal:
        return self._journal

    # -- event writers ---------------------------------------------------

    def record_submit(
        self, campaign_id: str, spec_mapping: Mapping[str, Any]
    ) -> None:
        self._journal.append(
            {
                "v": SCHEMA_VERSION,
                "event": "submit",
                "campaign_id": campaign_id,
                "spec": dict(spec_mapping),
            }
        )

    def record_claim(
        self, campaign_id: str, chunk_id: str, worker_id: str
    ) -> None:
        self._journal.append(
            {
                "v": SCHEMA_VERSION,
                "event": "claim",
                "campaign_id": campaign_id,
                "chunk_id": chunk_id,
                "worker_id": worker_id,
            }
        )

    def record_heartbeat(
        self, campaign_id: str, chunk_id: str, worker_id: str
    ) -> None:
        self._journal.append(
            {
                "v": SCHEMA_VERSION,
                "event": "heartbeat",
                "campaign_id": campaign_id,
                "chunk_id": chunk_id,
                "worker_id": worker_id,
            }
        )

    def record_ack(
        self,
        campaign_id: str,
        chunk_id: str,
        worker_id: str,
        accepted: bool,
        n_simulated: int,
        n_cache_hits: int,
    ) -> None:
        self._journal.append(
            {
                "v": SCHEMA_VERSION,
                "event": "ack",
                "campaign_id": campaign_id,
                "chunk_id": chunk_id,
                "worker_id": worker_id,
                "accepted": bool(accepted),
                "n_simulated": int(n_simulated),
                "n_cache_hits": int(n_cache_hits),
            }
        )

    def record_reap(
        self, campaign_id: str, chunk_id: str, worker_id: Optional[str]
    ) -> None:
        self._journal.append(
            {
                "v": SCHEMA_VERSION,
                "event": "reap",
                "campaign_id": campaign_id,
                "chunk_id": chunk_id,
                "worker_id": worker_id,
            }
        )

    def record_snapshot(
        self,
        campaign_id: str,
        spec_mapping: Mapping[str, Any],
        chunks: List[Dict[str, Any]],
    ) -> None:
        self._journal.append(
            self.snapshot_record(campaign_id, spec_mapping, chunks)
        )

    @staticmethod
    def snapshot_record(
        campaign_id: str,
        spec_mapping: Mapping[str, Any],
        chunks: List[Dict[str, Any]],
    ) -> Dict[str, Any]:
        """The compaction form: one record that replays to a whole campaign."""
        return {
            "v": SCHEMA_VERSION,
            "event": "snapshot",
            "campaign_id": campaign_id,
            "spec": dict(spec_mapping),
            "chunks": [dict(chunk) for chunk in chunks],
        }

    # -- reading / maintenance ------------------------------------------

    def replay(self) -> List[Dict[str, Any]]:
        """Committed records oldest-first (torn tail healed in place)."""
        return self._journal.replay()

    def compact(self, records: List[Dict[str, Any]]) -> int:
        return self._journal.compact(records)

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "CoordinatorJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
