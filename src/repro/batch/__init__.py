"""Batched vectorized simulation backend.

Steps whole campaigns instead of single runs: ``B`` closed-loop runs advance
in lockstep through one set of vectorized plant/controller/channel updates
per integration step, amortizing the Python interpreter cost of the serial
hot path across the batch while staying bitwise-identical to
:class:`~repro.process.simulator.ClosedLoopSimulator` per run.
"""

from repro.batch.simulator import BatchSimulator, run_specs_batched

__all__ = ["BatchSimulator", "run_specs_batched"]
