"""The batched closed-loop simulation driver.

:class:`BatchSimulator` executes a sequence of campaign
:class:`~repro.experiments.parallel.RunSpec` runs by advancing many of them
simultaneously: plant state, controller state, channel traffic and safety
bookkeeping all become ``(B, ...)`` arrays stepped in lockstep
(:mod:`repro.te.batch`, :mod:`repro.control.batch`,
:class:`~repro.network.channel.BatchChannel`,
:class:`~repro.process.safety.BatchSafetyMonitor`).  Each row keeps its own
scenario windows, injection magnitudes, random streams and (optionally) live
early-stop observer, so the per-run :class:`SimulationResult` objects are
**bitwise-identical** to what :func:`repro.experiments.runner.run_scenario`
produces for the same spec — including safety-trip truncation, the
trip-before-first-sample fallback sample, and live early stopping.

Rows that finish early (safety trip or confirmed live detection) are
*compacted out* of the batch: every batched component drops the finished
rows' state, so the remaining rows keep stepping through dense arrays with
no masking overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.config import ParallelConfig, SimulationConfig
from repro.common.exceptions import ConfigurationError
from repro.control.batch import BatchDecentralizedController
from repro.datasets.dataset import ProcessDataset
from repro.network.channel import BatchChannel
from repro.process.disturbances import BatchDisturbanceView
from repro.process.interfaces import StepObserver, StepSample
from repro.process.safety import BatchSafetyMonitor
from repro.process.simulator import SimulationResult
from repro.te.batch import BatchTEPlant
from repro.te.safety import DEFAULT_SAFETY_LIMITS

__all__ = ["BatchSimulator", "run_specs_batched", "DEFAULT_BATCH_SIZE"]

#: Default number of runs stepped together per vectorized batch.  Large
#: enough to amortize the per-step interpreter cost, small enough that the
#: in-flight trajectory arrays of a batch stay modest.
DEFAULT_BATCH_SIZE = ParallelConfig.DEFAULT_BATCH_SIZE


@dataclass
class _Row:
    """Everything one run of a lockstep batch carries besides array state."""

    position: int  # index into the caller's spec sequence
    batch_index: int  # row within the batch's trajectory slabs
    spec: object  # the RunSpec (typed loosely to avoid a layering import)
    metadata: Dict[str, object]
    observers: List[StepObserver] = field(default_factory=list)
    n_recorded: int = 0
    shutdown_time_hours: Optional[float] = None
    shutdown_reason: Optional[str] = None
    early_stop_time_hours: Optional[float] = None
    early_stop_reason: Optional[str] = None
    fallback_sample: Optional[np.ndarray] = None


def _group_key(config: SimulationConfig) -> SimulationConfig:
    """Runs sharing everything but the seed can advance in lockstep."""
    return replace(config, seed=0)


class BatchSimulator:
    """Executes campaign specs by stepping whole batches of runs at once.

    Parameters
    ----------
    batch_size:
        Maximum number of runs advanced together.  ``None`` uses
        :data:`DEFAULT_BATCH_SIZE`.
    live_analyzer:
        Fitted dual-level analyzer for specs carrying an early-stop policy
        (same contract as ``CampaignEngine.set_live_analyzer``).
    """

    def __init__(self, batch_size: Optional[int] = None, live_analyzer=None):
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1 or None")
        self.batch_size = (
            int(batch_size) if batch_size is not None else DEFAULT_BATCH_SIZE
        )
        self.live_analyzer = live_analyzer

    # ------------------------------------------------------------------
    def run_specs(self, specs: Sequence) -> List[SimulationResult]:
        """Execute every spec and return results in spec order.

        Specs are grouped by lockstep compatibility (identical simulation
        settings apart from the seed), each group is split into batches of
        at most :attr:`batch_size` rows, and each batch advances through
        one vectorized loop.
        """
        specs = list(specs)
        groups: Dict[SimulationConfig, List[int]] = {}
        for position, spec in enumerate(specs):
            groups.setdefault(_group_key(spec.simulation), []).append(position)

        results: List[Optional[SimulationResult]] = [None] * len(specs)
        for positions in groups.values():
            for offset in range(0, len(positions), self.batch_size):
                chunk = positions[offset : offset + self.batch_size]
                for position, result in zip(
                    chunk, self._run_batch([specs[i] for i in chunk], chunk)
                ):
                    results[position] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _build_row(self, position: int, batch_index: int, spec) -> _Row:
        """Mirror of :func:`repro.experiments.runner.run_scenario` assembly."""
        from repro.experiments.runner import (
            build_live_observers,
            scenario_run_metadata,
        )

        scenario = spec.scenario
        simulation = spec.simulation
        if simulation.total_samples < 1:
            raise ConfigurationError("configuration yields no samples")
        if (
            scenario.is_anomalous
            and spec.anomaly_start_hour >= simulation.duration_hours
        ):
            raise ConfigurationError(
                "anomaly_start_hour must fall inside the simulation horizon"
            )
        return _Row(
            position=position,
            batch_index=batch_index,
            spec=spec,
            metadata=scenario_run_metadata(scenario, spec.anomaly_start_hour),
            observers=build_live_observers(
                scenario, spec.anomaly_start_hour, spec.early_stop, self.live_analyzer
            ),
        )

    def _run_batch(
        self, specs: Sequence, positions: Sequence[int]
    ) -> List[SimulationResult]:
        """Advance one lockstep batch to completion and build its results."""
        from repro.experiments.runner import (
            build_channels,
            build_disturbance_schedule,
        )

        rows = [
            self._build_row(position, batch_index, spec)
            for batch_index, (position, spec) in enumerate(zip(positions, specs))
        ]
        config = specs[0].simulation  # lockstep fields are shared by the group
        n_rows = len(rows)

        plant = BatchTEPlant(seeds=[spec.simulation.seed for spec in specs])
        controller = BatchDecentralizedController(None, n_rows)
        sensor_channels, actuator_channels, schedules = [], [], []
        for spec in specs:
            sensor, actuator = build_channels(spec.scenario, spec.anomaly_start_hour)
            sensor_channels.append(sensor)
            actuator_channels.append(actuator)
            schedules.append(
                build_disturbance_schedule(spec.scenario, spec.anomaly_start_hour)
            )
        sensor_channel = BatchChannel(sensor_channels)
        actuator_channel = BatchChannel(actuator_channels)
        disturbances = BatchDisturbanceView(schedules)
        safety = BatchSafetyMonitor(
            DEFAULT_SAFETY_LIMITS, n_rows, enabled=config.enable_safety
        )

        names = list(plant.measured_variables.names) + list(
            plant.manipulated_variables.names
        )
        total_samples = config.total_samples
        steps_per_sample = config.integration_steps_per_sample
        dt = config.integration_step_hours
        n_columns = len(names)

        # Preallocated per-run trajectories; the lockstep clock is one scalar
        # sequence, so a single times vector serves every row's prefix.
        controller_slab = np.empty((n_rows, total_samples, n_columns))
        process_slab = np.empty((n_rows, total_samples, n_columns))
        times = np.empty(total_samples)

        for row in rows:
            for observer in row.observers:
                observer.on_run_start(names, row.spec.simulation, dict(row.metadata))

        # ``alive`` maps batch-local position -> original batch index (the
        # slab row); components are compacted whenever rows finish early.
        # ``recorded_through`` is the shared count of fully recorded samples
        # (rows advance in lockstep, so one scalar serves every alive row);
        # a row's own n_recorded is stamped only when it leaves the batch.
        alive = np.arange(n_rows)
        recorded_through = 0
        any_observers = any(row.observers for row in rows)

        def compact(keep_mask: np.ndarray, arrays: Sequence[np.ndarray] = ()):
            nonlocal alive
            keep = np.flatnonzero(keep_mask)
            plant.take(keep)
            controller.take(keep)
            sensor_channel.take(keep)
            actuator_channel.take(keep)
            disturbances.take(keep)
            safety.take(keep)
            alive = alive[keep]
            return [array[keep] for array in arrays]

        for sample_index in range(total_samples):
            if alive.size == 0:
                break
            batch_ended = False
            for _ in range(steps_per_sample):
                time = plant.time_hours
                true_xmeas = plant.measure(noisy=config.enable_noise)
                received_xmeas = sensor_channel.transmit(true_xmeas, time)
                commanded_xmv = controller.update(received_xmeas, dt)
                applied_xmv = actuator_channel.transmit(commanded_xmv, time)
                idv = disturbances.at(time)
                plant.step_batch(applied_xmv, dt, idv)

                tripped, reasons = safety.check(
                    plant.time_hours, plant.safety_quantities()
                )
                if tripped.any():
                    trip_time = plant.time_hours
                    tripped_locals = np.flatnonzero(tripped)
                    if recorded_through == 0:
                        # The plant tripped before its first sample could be
                        # stored; mirror the serial fallback of recording the
                        # (noiseless) state at t = 0 with nominal commands.
                        xmeas = plant.measure(noisy=False)
                        xmv = plant.manipulated_variables.nominal_values()
                        for local in tripped_locals:
                            rows[alive[local]].fallback_sample = np.concatenate(
                                [xmeas[local], xmv]
                            )
                    for local in tripped_locals:
                        row = rows[alive[local]]
                        row.n_recorded = recorded_through
                        row.shutdown_time_hours = trip_time
                        row.shutdown_reason = reasons[local]
                    (
                        true_xmeas,
                        received_xmeas,
                        commanded_xmv,
                        applied_xmv,
                    ) = compact(
                        ~tripped,
                        (true_xmeas, received_xmeas, commanded_xmv, applied_xmv),
                    )
                    if alive.size == 0:
                        batch_ended = True
                        break
            if batch_ended:
                break

            sample_time = plant.time_hours
            controller_values = np.concatenate(
                [received_xmeas, commanded_xmv], axis=1
            )
            process_values = np.concatenate([true_xmeas, applied_xmv], axis=1)
            controller_slab[alive, sample_index] = controller_values
            process_slab[alive, sample_index] = process_values
            times[sample_index] = sample_time
            recorded_through = sample_index + 1

            if any_observers:
                stopping = np.zeros(alive.size, dtype=bool)
                for local in range(alive.size):
                    row = rows[alive[local]]
                    if not row.observers:
                        continue
                    sample = StepSample(
                        index=sample_index,
                        time_hours=float(sample_time),
                        controller_values=controller_values[local],
                        process_values=process_values[local],
                    )
                    stop_requested = False
                    for observer in row.observers:
                        if observer.on_sample(sample):
                            stop_requested = True
                            if row.early_stop_reason is None:
                                row.early_stop_reason = observer.stop_reason
                    if stop_requested:
                        row.n_recorded = recorded_through
                        row.early_stop_time_hours = float(sample_time)
                        stopping[local] = True
                if stopping.any():
                    compact(~stopping)
                    if alive.size == 0:
                        break

        for local in range(alive.size):
            rows[alive[local]].n_recorded = recorded_through
        for row in rows:
            for observer in row.observers:
                observer.on_run_end(row.shutdown_time_hours, row.shutdown_reason)

        return [
            self._finalize(row, names, controller_slab, process_slab, times)
            for row in rows
        ]

    # ------------------------------------------------------------------
    def _finalize(
        self,
        row: _Row,
        names: Sequence[str],
        controller_slab: np.ndarray,
        process_slab: np.ndarray,
        times: np.ndarray,
    ) -> SimulationResult:
        """Assemble one row's :class:`SimulationResult` (serial-identical)."""
        run_metadata = dict(row.metadata)
        run_metadata.update(
            {
                "shutdown_time_hours": row.shutdown_time_hours,
                "shutdown_reason": row.shutdown_reason,
                "seed": row.spec.simulation.seed,
            }
        )
        if row.early_stop_time_hours is not None:
            run_metadata.update(
                {
                    "stopped_early": True,
                    "early_stop_time_hours": row.early_stop_time_hours,
                    "early_stop_reason": row.early_stop_reason,
                }
            )

        if row.n_recorded == 0:
            controller_values = row.fallback_sample[None, :].copy()
            process_values = row.fallback_sample[None, :].copy()
            row_times = np.array([0.0])
        else:
            controller_values = controller_slab[row.batch_index, : row.n_recorded].copy()
            process_values = process_slab[row.batch_index, : row.n_recorded].copy()
            row_times = times[: row.n_recorded].copy()

        def dataset(values: np.ndarray, view: str) -> ProcessDataset:
            metadata = dict(row.metadata, view=view)
            metadata.update(run_metadata)
            return ProcessDataset(values, names, row_times, metadata)

        return SimulationResult(
            controller_data=dataset(controller_values, "controller"),
            process_data=dataset(process_values, "process"),
            shutdown_time_hours=row.shutdown_time_hours,
            shutdown_reason=row.shutdown_reason,
            config=row.spec.simulation,
            metadata=run_metadata,
        )


def run_specs_batched(
    specs: Sequence,
    batch_size: Optional[int] = None,
    live_analyzer=None,
) -> List[SimulationResult]:
    """Execute campaign specs through the batched backend, in spec order."""
    simulator = BatchSimulator(batch_size=batch_size, live_analyzer=live_analyzer)
    return simulator.run_specs(specs)
