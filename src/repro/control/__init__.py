"""Regulatory control layer: PI/PID controllers and the decentralized TE strategy."""

from repro.control.pid import PIDController, PIDGains
from repro.control.loops import ControlLoop, LoopDefinition
from repro.control.te_controller import (
    TEDecentralizedController,
    default_loop_definitions,
)

__all__ = [
    "PIDController",
    "PIDGains",
    "ControlLoop",
    "LoopDefinition",
    "TEDecentralizedController",
    "default_loop_definitions",
]
