"""Single control loops: a PI controller bound to one XMEAS and one XMV."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.control.pid import PIDController, PIDGains

__all__ = ["LoopDefinition", "ControlLoop"]


@dataclass(frozen=True)
class LoopDefinition:
    """Static description of a regulatory control loop.

    Attributes
    ----------
    name:
        Human-readable loop name (e.g. ``"A feed flow"``).
    xmeas_index:
        1-based index of the controlled measurement.
    xmv_index:
        1-based index of the manipulated variable.
    setpoint:
        Setpoint in the engineering units of the measurement.
    kc / ti_hours:
        PI tuning.
    direction:
        ``+1`` if increasing the XMV raises the XMEAS, ``-1`` otherwise.
    output_bias:
        Nominal valve position used as the controller bias.
    """

    name: str
    xmeas_index: int
    xmv_index: int
    setpoint: float
    kc: float
    ti_hours: Optional[float]
    direction: int = 1
    output_bias: float = 50.0

    def __post_init__(self) -> None:
        if self.xmeas_index < 1:
            raise ConfigurationError("xmeas_index is 1-based and must be >= 1")
        if self.xmv_index < 1:
            raise ConfigurationError("xmv_index is 1-based and must be >= 1")


class ControlLoop:
    """A live loop instance: definition + controller state."""

    def __init__(self, definition: LoopDefinition):
        self.definition = definition
        self.controller = PIDController(
            gains=PIDGains(kc=definition.kc, ti_hours=definition.ti_hours),
            setpoint=definition.setpoint,
            output_bias=definition.output_bias,
            output_low=0.0,
            output_high=100.0,
            direction=definition.direction,
        )

    @property
    def name(self) -> str:
        """Loop name."""
        return self.definition.name

    def reset(self) -> None:
        """Clear controller memory."""
        self.controller.reset()

    def update(
        self,
        measurements: np.ndarray,
        dt_hours: float,
        setpoint_override: Optional[float] = None,
    ) -> float:
        """Compute the new valve position from the full measurement vector."""
        measurement = float(measurements[self.definition.xmeas_index - 1])
        return self.controller.update(measurement, dt_hours, setpoint_override)
