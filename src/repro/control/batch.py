"""Batched decentralized TE control: ``B`` regulatory layers in lockstep.

:class:`BatchDecentralizedController` vectorizes
:class:`~repro.control.te_controller.TEDecentralizedController` across runs:
each PI loop's internal state (integral, last output) and the override
filters become ``(B,)`` arrays, and one :meth:`update` call computes the
commands of every run with a handful of ufunc calls per loop instead of a
Python pass per run.  Every expression keeps the serial operand order — the
same discipline as :mod:`repro.te.batch` — so row ``i`` of the batched
command matrix is bitwise-identical to the serial controller fed row ``i``'s
measurements.

Only the configuration space the serial campaign controller actually uses is
supported: PI loops (no derivative action) with a positive update interval.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.control.te_controller import TEDecentralizedController
from repro.te.constants import N_XMEAS, N_XMV

__all__ = ["BatchDecentralizedController"]


class _BatchLoop:
    """One PI loop's definition plus its per-row state."""

    def __init__(self, definition, n_rows: int):
        if definition.ti_hours is None or definition.ti_hours <= 0:
            raise ConfigurationError(
                "the batched controller supports PI loops only "
                f"(loop {definition.name!r} has no integral time)"
            )
        self.definition = definition
        self.integral = np.zeros(n_rows)

    def take(self, indices: np.ndarray) -> None:
        self.integral = self.integral[indices]


class BatchDecentralizedController:
    """Row-wise mirror of a :class:`TEDecentralizedController`.

    Parameters
    ----------
    template:
        The serial controller whose loop set, override tuning and constant
        valve positions every row replicates.  The template itself is left
        untouched.
    n_rows:
        Number of runs in the batch.
    """

    def __init__(self, template: Optional[TEDecentralizedController], n_rows: int):
        template = template or TEDecentralizedController()
        self._loops: List[_BatchLoop] = [
            _BatchLoop(loop.definition, n_rows) for loop in template.loops
        ]
        for loop in template.loops:
            gains = loop.controller.gains
            if gains.td_hours:
                raise ConfigurationError(
                    "the batched controller supports PI loops only "
                    f"(loop {loop.name!r} has derivative action)"
                )
        self.pressure_override_start_kpa = template.pressure_override_start_kpa
        self.pressure_override_gain = template.pressure_override_gain
        self.level_override_start_percent = template.level_override_start_percent
        self.level_override_gain = template.level_override_gain
        self.override_filter_hours = template.override_filter_hours
        self._pressure_loops = template.PRESSURE_OVERRIDE_LOOPS
        self._level_loops = template.LEVEL_OVERRIDE_LOOPS
        self._constant_xmv: Dict[int, float] = dict(template._constant_xmv)
        self._nominal_output = np.array(template._output, dtype=float, copy=True)
        self._n_rows = int(n_rows)
        self.reset()

    @property
    def n_rows(self) -> int:
        """Number of runs in the batch."""
        return self._n_rows

    def reset(self) -> None:
        """Clear every row's controller memory."""
        for loop in self._loops:
            loop.integral = np.zeros(self._n_rows)
        self._output = np.tile(self._nominal_output, (self._n_rows, 1))
        for index, value in self._constant_xmv.items():
            self._output[:, index - 1] = value
        self._filtered_pressure = np.zeros(self._n_rows)
        self._filtered_level = np.zeros(self._n_rows)
        self._filters_initialized = False

    def take(self, indices: np.ndarray) -> None:
        """Keep only the given rows (compaction after trips / early stops)."""
        for loop in self._loops:
            loop.take(indices)
        self._output = self._output[indices]
        self._filtered_pressure = self._filtered_pressure[indices]
        self._filtered_level = self._filtered_level[indices]
        self._n_rows = int(np.asarray(indices).size)

    def _filter(self, previous: np.ndarray, values: np.ndarray, dt_hours: float) -> np.ndarray:
        """Row-wise first-order override filter (mirrors the serial one)."""
        if not self._filters_initialized or self.override_filter_hours <= 0:
            return values.copy()
        alpha = min(dt_hours / self.override_filter_hours, 1.0)
        return previous + alpha * (values - previous)

    def update(self, measurements: np.ndarray, dt_hours: float) -> np.ndarray:
        """Per-row commands, ``(B, 12)``, for per-row measurements ``(B, 41)``."""
        measurements = np.asarray(measurements, dtype=float)
        if measurements.shape != (self._n_rows, N_XMEAS):
            raise ConfigurationError(
                f"expected a ({self._n_rows}, {N_XMEAS}) measurement matrix, "
                f"got {measurements.shape}"
            )
        if dt_hours <= 0:
            return self._output.copy()

        self._filtered_pressure = self._filter(
            self._filtered_pressure, measurements[:, 6], dt_hours
        )
        self._filtered_level = self._filter(
            self._filtered_level, measurements[:, 7], dt_hours
        )
        self._filters_initialized = True

        pressure_high = self._filtered_pressure > self.pressure_override_start_kpa
        pressure_active = bool(pressure_high.any())
        if pressure_active:
            pressure_excess = (
                self._filtered_pressure - self.pressure_override_start_kpa
            )
            pressure_factor = np.where(
                pressure_high,
                np.maximum(0.10, 1.0 - self.pressure_override_gain * pressure_excess),
                1.0,
            )
        level_high = self._filtered_level > self.level_override_start_percent
        level_active = bool(level_high.any())
        if level_active:
            level_excess = self._filtered_level - self.level_override_start_percent
            level_factor = np.where(
                level_high,
                np.maximum(0.15, 1.0 - self.level_override_gain * level_excess),
                1.0,
            )

        output = self._output.copy()
        for loop in self._loops:
            definition = loop.definition
            # A scalar setpoint broadcasts bitwise-identically to a filled
            # vector; only rows under an active override need an array.
            setpoint = definition.setpoint
            if pressure_active and definition.name in self._pressure_loops:
                setpoint = np.where(
                    pressure_factor < 1.0,
                    definition.setpoint * pressure_factor,
                    setpoint,
                )
            if level_active and definition.name in self._level_loops:
                setpoint = np.where(
                    level_factor < 1.0, definition.setpoint * level_factor, setpoint
                )

            measurement = measurements[:, definition.xmeas_index - 1]
            error = definition.direction * (setpoint - measurement)
            proportional = definition.kc * error
            integral_increment = (
                definition.kc / definition.ti_hours * error * dt_hours
            )
            # The serial PID adds a literal-zero derivative term; mirror it
            # so a -0.0 partial sum normalizes identically.
            unclamped = (
                definition.output_bias
                + proportional
                + loop.integral
                + integral_increment
                + 0.0
            )
            value = np.minimum(np.maximum(unclamped, 0.0), 100.0)

            accumulate = (
                (value == unclamped)
                | ((unclamped > value) & (integral_increment < 0))
                | ((unclamped < value) & (integral_increment > 0))
            )
            loop.integral = np.where(
                accumulate, loop.integral + integral_increment, loop.integral
            )
            output[:, definition.xmv_index - 1] = value

        for index, value in self._constant_xmv.items():
            output[:, index - 1] = value

        self._output = output
        return output.copy()

    @property
    def output_names(self):
        return tuple(f"XMV({i})" for i in range(1, N_XMV + 1))
