"""Discrete PI/PID controller with output clamping and anti-windup.

The Tennessee-Eastman regulatory layer (Ricker, 1996) is built almost
exclusively from PI loops; the derivative term is provided for completeness
but defaults to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.exceptions import ConfigurationError

__all__ = ["PIDGains", "PIDController"]


@dataclass(frozen=True)
class PIDGains:
    """Controller tuning parameters.

    Attributes
    ----------
    kc:
        Proportional gain, in output units per unit of error.
    ti_hours:
        Integral (reset) time in hours; ``None`` disables integral action.
    td_hours:
        Derivative time in hours (0 disables derivative action).
    """

    kc: float
    ti_hours: Optional[float] = None
    td_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.ti_hours is not None and self.ti_hours <= 0:
            raise ConfigurationError("ti_hours must be positive or None")
        if self.td_hours < 0:
            raise ConfigurationError("td_hours must be >= 0")


class PIDController:
    """A single-loop, positional-form PID controller.

    Parameters
    ----------
    gains:
        Tuning parameters.
    setpoint:
        Initial setpoint, in engineering units of the controlled variable.
    output_bias:
        Controller output when the error and integral are zero (typically the
        nominal valve position).
    output_low / output_high:
        Output clamp (0-100 % for valves).  The integral term is frozen while
        the output is saturated in the direction that would worsen windup.
    direction:
        ``+1`` when an output increase raises the controlled variable (e.g. a
        feed valve), ``-1`` when it lowers it (e.g. cooling water on a
        temperature, purge valve on a pressure).
    """

    def __init__(
        self,
        gains: PIDGains,
        setpoint: float,
        output_bias: float = 0.0,
        output_low: float = 0.0,
        output_high: float = 100.0,
        direction: int = 1,
    ):
        if output_low >= output_high:
            raise ConfigurationError("output_low must be below output_high")
        if direction not in (1, -1):
            raise ConfigurationError("direction must be +1 or -1")
        self.gains = gains
        self.setpoint = float(setpoint)
        self.output_bias = float(output_bias)
        self.output_low = float(output_low)
        self.output_high = float(output_high)
        self.direction = int(direction)
        self.reset()

    def reset(self) -> None:
        """Clear the integral and derivative memory."""
        self._integral = 0.0
        self._previous_error: Optional[float] = None
        self._last_output = self.output_bias

    @property
    def last_output(self) -> float:
        """Output computed by the most recent :meth:`update` call."""
        return self._last_output

    def update(self, measurement: float, dt_hours: float, setpoint: Optional[float] = None) -> float:
        """Compute the new output for the given measurement.

        Parameters
        ----------
        measurement:
            Current value of the controlled variable.
        dt_hours:
            Time since the previous update, in hours.
        setpoint:
            Optional setpoint override for this update (used by cascade and
            override schemes); the stored setpoint is left unchanged.
        """
        if dt_hours <= 0:
            return self._last_output
        active_setpoint = self.setpoint if setpoint is None else float(setpoint)
        error = self.direction * (active_setpoint - float(measurement))

        proportional = self.gains.kc * error

        integral_increment = 0.0
        if self.gains.ti_hours is not None:
            integral_increment = self.gains.kc / self.gains.ti_hours * error * dt_hours

        derivative = 0.0
        if self.gains.td_hours > 0 and self._previous_error is not None:
            derivative = (
                self.gains.kc
                * self.gains.td_hours
                * (error - self._previous_error)
                / dt_hours
            )
        self._previous_error = error

        unclamped = self.output_bias + proportional + self._integral + integral_increment + derivative
        output = min(max(unclamped, self.output_low), self.output_high)

        # Anti-windup: only accumulate the integral when it does not push the
        # output further into saturation.
        if output == unclamped or (unclamped > output and integral_increment < 0) or (
            unclamped < output and integral_increment > 0
        ):
            self._integral += integral_increment

        self._last_output = output
        return output
