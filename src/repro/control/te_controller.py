"""Ricker-style decentralized control of the Tennessee-Eastman plant.

The control structure follows the spirit of Ricker (1996): a set of
single-input single-output PI loops that regulate the feed flows, the
production rate, the vessel levels, the reactor pressure and the key
temperatures, plus a simple high-pressure override that cuts the A+C feed
when the reactor pressure approaches its shutdown limit.

The loop pairing reproduces the behaviour the paper's evaluation relies on:

* the A feed flow, ``XMEAS(1)``, is regulated by the A feed valve,
  ``XMV(3)`` — so forging ``XMEAS(1)`` makes the controller open ``XMV(3)``;
* the product flow, ``XMEAS(17)``, is held at its production setpoint by
  ``XMV(8)``, so when upstream production collapses (IDV(6) or an attack
  closing ``XMV(3)``) the liquid inventory is progressively drained and the
  stripper level eventually trips the plant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.control.loops import ControlLoop, LoopDefinition
from repro.process.interfaces import Controller
from repro.te.constants import N_XMEAS, N_XMV, XMV_TABLE

__all__ = ["TEDecentralizedController", "default_loop_definitions"]


def default_loop_definitions() -> Tuple[LoopDefinition, ...]:
    """The default decentralized loop set (PV, MV, setpoint and PI tuning)."""
    xmv_nominal = [row[1] for row in XMV_TABLE]
    return (
        LoopDefinition(
            name="A feed flow",
            xmeas_index=1, xmv_index=3, setpoint=0.25052,
            kc=25.0, ti_hours=0.04, direction=1, output_bias=xmv_nominal[2],
        ),
        LoopDefinition(
            name="D feed flow",
            xmeas_index=2, xmv_index=1, setpoint=3664.0,
            kc=0.005, ti_hours=0.04, direction=1, output_bias=xmv_nominal[0],
        ),
        LoopDefinition(
            name="E feed flow",
            xmeas_index=3, xmv_index=2, setpoint=4509.3,
            kc=0.0035, ti_hours=0.04, direction=1, output_bias=xmv_nominal[1],
        ),
        LoopDefinition(
            name="A and C feed flow",
            xmeas_index=4, xmv_index=4, setpoint=9.3477,
            kc=1.9, ti_hours=0.04, direction=1, output_bias=xmv_nominal[3],
        ),
        LoopDefinition(
            name="Reactor pressure",
            xmeas_index=7, xmv_index=6, setpoint=2705.0,
            kc=0.30, ti_hours=2.0, direction=-1, output_bias=xmv_nominal[5],
        ),
        LoopDefinition(
            name="Separator level",
            xmeas_index=12, xmv_index=11, setpoint=50.0,
            kc=1.7, ti_hours=6.0, direction=1, output_bias=xmv_nominal[10],
        ),
        LoopDefinition(
            name="Stripper level",
            xmeas_index=15, xmv_index=7, setpoint=50.0,
            kc=0.8, ti_hours=4.0, direction=1, output_bias=xmv_nominal[6],
        ),
        LoopDefinition(
            name="Production rate",
            xmeas_index=17, xmv_index=8, setpoint=22.949,
            kc=0.6, ti_hours=0.1, direction=1, output_bias=xmv_nominal[7],
        ),
        LoopDefinition(
            name="Stripper temperature",
            xmeas_index=18, xmv_index=9, setpoint=65.731,
            kc=1.0, ti_hours=1.0, direction=1, output_bias=xmv_nominal[8],
        ),
        LoopDefinition(
            name="Reactor temperature",
            xmeas_index=9, xmv_index=10, setpoint=120.40,
            kc=1.6, ti_hours=0.5, direction=-1, output_bias=xmv_nominal[9],
        ),
    )


class TEDecentralizedController(Controller):
    """Decentralized PI control of the TE plant.

    Parameters
    ----------
    loops:
        Loop definitions; defaults to :func:`default_loop_definitions`.
    pressure_override_start_kpa:
        Reactor pressure above which the fresh-feed setpoints start being cut.
    pressure_override_gain:
        Fractional setpoint reduction per kPa above the override start.  The
        override emulates Ricker's production-rate coordination: when the
        reactor pressure approaches its shutdown limit, the D, E and A+C feed
        setpoints are reduced together, which cuts production instead of
        letting the plant trip on high pressure.
    constant_xmv:
        Positions held for manipulated variables that are not driven by any
        loop (defaults to their nominal positions: compressor recycle valve
        and agitator speed).
    """

    #: Loops whose setpoint is scaled down by the high-pressure override
    #: (cuts the feeds that load the vapour space: the gaseous A+C feed and
    #: the volatile E feed).
    PRESSURE_OVERRIDE_LOOPS = ("A and C feed flow", "E feed flow")
    #: Loops whose setpoint is scaled down by the high-reactor-level override
    #: (cuts the liquid-forming D and E feeds when the reactor fills up).
    LEVEL_OVERRIDE_LOOPS = ("D feed flow", "E feed flow")

    def __init__(
        self,
        loops: Optional[Sequence[LoopDefinition]] = None,
        pressure_override_start_kpa: float = 2760.0,
        pressure_override_gain: float = 0.025,
        level_override_start_percent: float = 82.0,
        level_override_gain: float = 0.025,
        override_filter_hours: float = 0.3,
        constant_xmv: Optional[Dict[int, float]] = None,
    ):
        definitions = tuple(loops) if loops is not None else default_loop_definitions()
        driven = [definition.xmv_index for definition in definitions]
        if len(set(driven)) != len(driven):
            raise ConfigurationError("two loops drive the same manipulated variable")
        self._loops: List[ControlLoop] = [ControlLoop(d) for d in definitions]
        self._driven = set(driven)
        self.pressure_override_start_kpa = float(pressure_override_start_kpa)
        self.pressure_override_gain = float(pressure_override_gain)
        self.level_override_start_percent = float(level_override_start_percent)
        self.level_override_gain = float(level_override_gain)
        self.override_filter_hours = float(override_filter_hours)
        self._filtered_pressure: Optional[float] = None
        self._filtered_level: Optional[float] = None

        nominal = {index + 1: value for index, (_, value) in enumerate(XMV_TABLE)}
        self._constant_xmv: Dict[int, float] = {
            index: value for index, value in nominal.items() if index not in self._driven
        }
        if constant_xmv:
            self._constant_xmv.update({int(k): float(v) for k, v in constant_xmv.items()})
        self._output = np.array([nominal[i + 1] for i in range(N_XMV)], dtype=float)

    # ------------------------------------------------------------------
    @property
    def loops(self) -> Tuple[ControlLoop, ...]:
        """The live control loops."""
        return tuple(self._loops)

    @property
    def output_names(self) -> Sequence[str]:
        return tuple(f"XMV({i})" for i in range(1, N_XMV + 1))

    def loop_by_name(self, name: str) -> ControlLoop:
        """Find a loop by its human-readable name."""
        for loop in self._loops:
            if loop.name == name:
                return loop
        raise KeyError(f"no loop named {name!r}")

    def reset(self) -> None:
        for loop in self._loops:
            loop.reset()
        nominal = {index + 1: value for index, (_, value) in enumerate(XMV_TABLE)}
        self._output = np.array([nominal[i + 1] for i in range(N_XMV)], dtype=float)
        for index, value in self._constant_xmv.items():
            self._output[index - 1] = value
        self._filtered_pressure = None
        self._filtered_level = None

    def _filter(self, previous: Optional[float], value: float, dt_hours: float) -> float:
        """First-order filter used by the override signals (avoids chattering)."""
        if previous is None or self.override_filter_hours <= 0:
            return value
        alpha = min(dt_hours / self.override_filter_hours, 1.0)
        return previous + alpha * (value - previous)

    def update(self, measurements: np.ndarray, dt_hours: float) -> np.ndarray:
        measurements = np.asarray(measurements, dtype=float).ravel()
        if measurements.shape[0] != N_XMEAS:
            raise ConfigurationError(
                f"expected {N_XMEAS} measurements, got {measurements.shape[0]}"
            )

        self._filtered_pressure = self._filter(
            self._filtered_pressure, float(measurements[6]), dt_hours
        )
        self._filtered_level = self._filter(
            self._filtered_level, float(measurements[7]), dt_hours
        )

        pressure_factor = 1.0
        if self._filtered_pressure > self.pressure_override_start_kpa:
            excess = self._filtered_pressure - self.pressure_override_start_kpa
            pressure_factor = max(0.10, 1.0 - self.pressure_override_gain * excess)

        level_factor = 1.0
        if self._filtered_level > self.level_override_start_percent:
            excess = self._filtered_level - self.level_override_start_percent
            level_factor = max(0.15, 1.0 - self.level_override_gain * excess)

        output = self._output.copy()
        for loop in self._loops:
            setpoint_override = None
            if loop.definition.name in self.PRESSURE_OVERRIDE_LOOPS and pressure_factor < 1.0:
                setpoint_override = loop.definition.setpoint * pressure_factor
            if loop.definition.name in self.LEVEL_OVERRIDE_LOOPS and level_factor < 1.0:
                setpoint_override = loop.definition.setpoint * level_factor
            value = loop.update(measurements, dt_hours, setpoint_override)
            output[loop.definition.xmv_index - 1] = value

        for index, value in self._constant_xmv.items():
            output[index - 1] = value

        self._output = output
        return output.copy()
