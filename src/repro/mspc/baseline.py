"""Univariate Shewhart monitoring — the baseline MSPC is compared against.

Classical univariate statistical process control puts one Shewhart chart on
every measured variable and flags an anomaly when any variable leaves its own
``mean ± k·sigma`` band.  The paper's multivariate approach subsumes this
baseline: the D and Q statistics capture changes in the *relations between*
variables that per-variable charts cannot see, and produce two charts instead
of M.  The baseline is provided so the benchmarks can quantify that contrast
(number of charts, detection delay, diagnosis ambiguity) on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np
from scipy import stats

from repro.common.exceptions import ConfigurationError, NotFittedError
from repro.common.validation import as_2d_array, check_matching_columns
from repro.datasets.dataset import ProcessDataset
from repro.mspc.charts import detect_anomaly

__all__ = ["UnivariateShewhartMonitor", "UnivariateMonitoringResult"]

_DataLike = Union[ProcessDataset, np.ndarray]


def _values_names_times(data: _DataLike):
    if isinstance(data, ProcessDataset):
        return data.values, data.variable_names, data.timestamps
    array = np.asarray(data, dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    return array, None, None


@dataclass
class UnivariateMonitoringResult:
    """Per-variable violation information for one monitored window."""

    variable_names: Tuple[str, ...]
    violations: np.ndarray          # boolean (N, M)
    timestamps: Optional[np.ndarray]
    consecutive_violations: int

    @property
    def any_violation(self) -> np.ndarray:
        """Boolean per-observation mask: any variable outside its band."""
        return self.violations.any(axis=1)

    def detection_index(self) -> Optional[int]:
        """Index where any single variable fires the consecutive-violation rule."""
        indices = []
        for column in range(self.violations.shape[1]):
            index = detect_anomaly(
                self.violations[:, column].astype(float),
                0.5,
                self.consecutive_violations,
            )
            if index is not None:
                indices.append(index)
        return min(indices) if indices else None

    def detection_time(self) -> Optional[float]:
        """Timestamp of the detection, or ``None``."""
        index = self.detection_index()
        if index is None:
            return None
        if self.timestamps is None:
            return float(index)
        return float(self.timestamps[index])

    def violating_variables(self) -> Tuple[str, ...]:
        """Variables that violated their band at least once, ordered by count."""
        counts = self.violations.sum(axis=0)
        order = np.argsort(-counts)
        return tuple(self.variable_names[i] for i in order if counts[i] > 0)


class UnivariateShewhartMonitor:
    """One Shewhart chart per variable (the non-multivariate baseline).

    Parameters
    ----------
    confidence:
        Two-sided confidence level of each per-variable band (0.99 puts the
        band at roughly ±2.58 sigma).
    consecutive_violations:
        Number of consecutive out-of-band observations (on the same variable)
        required to flag an anomaly — kept identical to the MSPC rule so the
        comparison is fair.
    """

    def __init__(self, confidence: float = 0.99, consecutive_violations: int = 3):
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError("confidence must be in (0, 1)")
        if consecutive_violations < 1:
            raise ConfigurationError("consecutive_violations must be >= 1")
        self.confidence = float(confidence)
        self.consecutive_violations = int(consecutive_violations)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._names: Optional[Tuple[str, ...]] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._mean is not None

    @property
    def n_charts(self) -> int:
        """Number of univariate charts (one per variable)."""
        self._require_fitted()
        return self._mean.shape[0]

    def _require_fitted(self) -> None:
        if self._mean is None:
            raise NotFittedError("UnivariateShewhartMonitor must be fitted first")

    def fit(self, calibration: _DataLike) -> "UnivariateShewhartMonitor":
        """Learn per-variable means and control bands from calibration data."""
        values, names, _ = _values_names_times(calibration)
        values = as_2d_array(values, "calibration data")
        self._mean = values.mean(axis=0)
        std = values.std(axis=0, ddof=1) if values.shape[0] > 1 else np.zeros(values.shape[1])
        self._std = np.where(std > 1e-12, std, 1.0)
        if names is not None:
            self._names = tuple(names)
        else:
            self._names = tuple(f"VAR({i + 1})" for i in range(values.shape[1]))
        return self

    def limits(self) -> Dict[str, Tuple[float, float]]:
        """Per-variable (lower, upper) control limits."""
        self._require_fitted()
        z = stats.norm.ppf(0.5 + self.confidence / 2.0)
        lower = self._mean - z * self._std
        upper = self._mean + z * self._std
        return {
            name: (float(lower[i]), float(upper[i]))
            for i, name in enumerate(self._names)
        }

    def monitor(self, data: _DataLike) -> UnivariateMonitoringResult:
        """Evaluate every per-variable chart on new data."""
        self._require_fitted()
        values, names, timestamps = _values_names_times(data)
        values = as_2d_array(values, "data")
        check_matching_columns(self._mean.shape[0], values, "data")
        if names is not None and tuple(names) != self._names:
            raise ConfigurationError(
                "monitored data variables do not match the calibration variables"
            )
        z = stats.norm.ppf(0.5 + self.confidence / 2.0)
        deviation = np.abs(values - self._mean) / self._std
        return UnivariateMonitoringResult(
            variable_names=self._names,
            violations=deviation > z,
            timestamps=timestamps,
            consecutive_violations=self.consecutive_violations,
        )
