"""PCA-based Multivariate Statistical Process Control (MSPC).

This package implements the statistical machinery of the paper:

* auto-scaling of calibration data (:mod:`repro.mspc.preprocessing`);
* PCA fitted by singular value decomposition (:mod:`repro.mspc.pca`);
* the D-statistic (Hotelling's T^2) on the scores and the Q-statistic (SPE)
  on the residuals (:mod:`repro.mspc.statistics`);
* theoretical and empirical control limits (:mod:`repro.mspc.limits`);
* control charts and the three-consecutive-violations detection rule
  (:mod:`repro.mspc.charts`);
* Average Run Length computation (:mod:`repro.mspc.arl`);
* oMEDA diagnosis plots (:mod:`repro.mspc.omeda`);
* the high-level :class:`~repro.mspc.model.MSPCMonitor` combining all of the
  above.
"""

from repro.mspc.preprocessing import AutoScaler
from repro.mspc.pca import PCAModel
from repro.mspc.statistics import hotelling_t2, squared_prediction_error
from repro.mspc.limits import (
    t2_limit_theoretical,
    spe_limit_theoretical,
    percentile_limit,
    ControlLimits,
)
from repro.mspc.charts import ControlChart, ViolationRun, find_violation_runs, detect_anomaly
from repro.mspc.arl import average_run_length, run_length
from repro.mspc.omeda import omeda, omeda_contributions
from repro.mspc.model import MSPCMonitor, MonitoringResult
from repro.mspc.baseline import UnivariateShewhartMonitor, UnivariateMonitoringResult

__all__ = [
    "AutoScaler",
    "PCAModel",
    "hotelling_t2",
    "squared_prediction_error",
    "t2_limit_theoretical",
    "spe_limit_theoretical",
    "percentile_limit",
    "ControlLimits",
    "ControlChart",
    "ViolationRun",
    "find_violation_runs",
    "detect_anomaly",
    "average_run_length",
    "run_length",
    "omeda",
    "omeda_contributions",
    "MSPCMonitor",
    "MonitoringResult",
    "UnivariateShewhartMonitor",
    "UnivariateMonitoringResult",
]
