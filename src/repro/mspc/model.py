"""The high-level MSPC monitor: calibration, monitoring, detection, diagnosis.

:class:`MSPCMonitor` ties the pieces of the package together the way the
paper uses them:

1. **Calibration** — :meth:`MSPCMonitor.fit` auto-scales the calibration data,
   fits the PCA model and derives the control limits of the D and Q statistics
   at the configured confidence levels.
2. **Monitoring** — :meth:`MSPCMonitor.monitor` evaluates both statistics on
   new data and applies the three-consecutive-violations detection rule on
   either chart, producing a :class:`MonitoringResult`.
3. **Diagnosis** — :meth:`MSPCMonitor.diagnose` computes the oMEDA vector for
   a group of observations (by default, the first observations that exceeded
   the control limits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.config import MSPCConfig
from repro.common.exceptions import DataShapeError, NotFittedError
from repro.datasets.dataset import ProcessDataset
from repro.mspc.charts import ControlChart
from repro.mspc.limits import ControlLimits
from repro.mspc.omeda import omeda_contributions
from repro.mspc.pca import PCAModel
from repro.mspc.preprocessing import AutoScaler
from repro.mspc.statistics import hotelling_t2, squared_prediction_error

__all__ = ["MSPCMonitor", "MonitoringResult", "OmedaResult"]

_DataLike = Union[ProcessDataset, np.ndarray]


def _values_and_names(data: _DataLike) -> Tuple[np.ndarray, Optional[Tuple[str, ...]], Optional[np.ndarray]]:
    if isinstance(data, ProcessDataset):
        return data.values, data.variable_names, data.timestamps
    array = np.asarray(data, dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    return array, None, None


@dataclass
class OmedaResult:
    """Per-variable oMEDA contributions for a group of observations."""

    variable_names: Tuple[str, ...]
    contributions: np.ndarray
    observation_indices: Tuple[int, ...]

    def as_dict(self) -> Dict[str, float]:
        """Mapping from variable name to its contribution."""
        return {
            name: float(value)
            for name, value in zip(self.variable_names, self.contributions)
        }

    def top_variables(self, count: int = 5) -> Tuple[str, ...]:
        """The ``count`` variables with the largest absolute contribution."""
        order = np.argsort(-np.abs(self.contributions))
        return tuple(self.variable_names[i] for i in order[:count])

    def dominant_variable(self) -> str:
        """The single variable with the largest absolute contribution."""
        return self.top_variables(1)[0]

    def dominance_ratio(self) -> float:
        """|largest| / |second largest| contribution (1.0 when M == 1).

        A high ratio means the diagnosis clearly singles out one variable; a
        ratio close to 1 means no variable stands out (the DoS situation in
        the paper).
        """
        magnitudes = np.sort(np.abs(self.contributions))[::-1]
        if magnitudes.size < 2 or magnitudes[1] == 0:
            return float("inf") if magnitudes[0] > 0 else 1.0
        return float(magnitudes[0] / magnitudes[1])

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON-safe mapping of this diagnosis vector."""
        return {
            "variable_names": list(self.variable_names),
            "contributions": [float(value) for value in self.contributions],
            "observation_indices": [int(i) for i in self.observation_indices],
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "OmedaResult":
        """Rebuild a diagnosis vector from its :meth:`to_mapping` form."""
        return cls(
            variable_names=tuple(str(name) for name in mapping["variable_names"]),
            contributions=np.asarray(mapping["contributions"], dtype=float),
            observation_indices=tuple(int(i) for i in mapping["observation_indices"]),
        )


@dataclass
class MonitoringResult:
    """Outcome of monitoring one data window with a fitted MSPC model."""

    d_chart: ControlChart
    q_chart: ControlChart
    detection_confidence: float
    consecutive_violations: int

    @property
    def charts(self) -> Tuple[ControlChart, ControlChart]:
        """Both control charts (D first, Q second)."""
        return (self.d_chart, self.q_chart)

    @property
    def detection_index(self) -> Optional[int]:
        """Earliest index at which either chart fires the detection rule."""
        indices = [
            chart.detection_index(self.detection_confidence, self.consecutive_violations)
            for chart in self.charts
        ]
        indices = [index for index in indices if index is not None]
        return min(indices) if indices else None

    @property
    def detection_time(self) -> Optional[float]:
        """Earliest timestamp at which either chart fires the detection rule."""
        return self.detection_time_after(None)

    def detection_time_after(self, start_time: Optional[float]) -> Optional[float]:
        """Earliest detection at or after ``start_time`` on either chart.

        Detections that precede ``start_time`` are false alarms with respect
        to an anomaly that begins at that time and are ignored here; they can
        be inspected through :meth:`false_alarm_time`.
        """
        times = [
            chart.detection_time(
                self.detection_confidence, self.consecutive_violations, start_time
            )
            for chart in self.charts
        ]
        times = [time for time in times if time is not None]
        return min(times) if times else None

    def false_alarm_time(self, anomaly_start_time: float) -> Optional[float]:
        """Earliest detection strictly before ``anomaly_start_time`` (if any)."""
        time = self.detection_time_after(None)
        if time is not None and time < float(anomaly_start_time):
            return time
        return None

    @property
    def detected(self) -> bool:
        """Whether the detection rule fired on either chart."""
        return self.detection_index is not None

    def first_violation_indices(
        self, count: int = 3, start_time: Optional[float] = None
    ) -> np.ndarray:
        """First observations above the detection limit on either chart.

        These observations are the group handed to oMEDA for diagnosis.
        ``start_time`` restricts the search to observations at or after it;
        when it is omitted and the detection rule fired, the group is anchored
        at the start of the detected violation run, so isolated false-alarm
        points earlier in the window do not contaminate the diagnosis.
        """
        if start_time is None and self.detection_index is not None:
            anchor = max(self.detection_index - self.consecutive_violations + 1, 0)
            timestamps = self.d_chart.timestamps
            start_time = float(timestamps[anchor]) if timestamps is not None else float(anchor)
        collected = np.concatenate(
            [
                chart.first_violating_indices(
                    self.detection_confidence, count, start_time
                )
                for chart in self.charts
            ]
        )
        if collected.size == 0:
            return collected.astype(int)
        unique = np.unique(collected)
        return unique[:count]


class MSPCMonitor:
    """PCA-based MSPC model with detection and diagnosis.

    Parameters
    ----------
    config:
        Monitoring configuration (components, confidence levels, detection
        rule, limit method).  Defaults to the paper's settings.
    """

    def __init__(self, config: Optional[MSPCConfig] = None):
        self.config = config or MSPCConfig()
        self.scaler = AutoScaler()
        self.pca = PCAModel(
            n_components=self.config.n_components,
            variance_to_explain=self.config.variance_to_explain,
        )
        self._t2_limits: Optional[ControlLimits] = None
        self._spe_limits: Optional[ControlLimits] = None
        self._variable_names: Optional[Tuple[str, ...]] = None
        self._calibration_t2: Optional[np.ndarray] = None
        self._calibration_spe: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._t2_limits is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("MSPCMonitor must be fitted on calibration data first")

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Names of the monitored variables."""
        self._require_fitted()
        return self._variable_names

    @property
    def t2_limits(self) -> ControlLimits:
        """Control limits of the D-statistic."""
        self._require_fitted()
        return self._t2_limits

    @property
    def spe_limits(self) -> ControlLimits:
        """Control limits of the Q-statistic."""
        self._require_fitted()
        return self._spe_limits

    @property
    def calibration_statistics(self) -> Tuple[np.ndarray, np.ndarray]:
        """D and Q statistics of the calibration observations."""
        self._require_fitted()
        return self._calibration_t2, self._calibration_spe

    # ------------------------------------------------------------------
    def fit(self, calibration: _DataLike) -> "MSPCMonitor":
        """Calibrate the monitor on normal-operation data."""
        values, names, _ = _values_and_names(calibration)
        scaled = self.scaler.fit_transform(values)
        self.pca.fit(scaled)

        self._calibration_t2 = hotelling_t2(self.pca, scaled)
        self._calibration_spe = squared_prediction_error(self.pca, scaled)
        self._t2_limits = ControlLimits.for_t2(
            self.pca,
            self._calibration_t2,
            self.config.confidence_levels,
            self.config.limit_method,
        )
        self._spe_limits = ControlLimits.for_spe(
            self.pca,
            self._calibration_spe,
            self.config.confidence_levels,
            self.config.limit_method,
        )
        if names is not None:
            self._variable_names = tuple(names)
        else:
            self._variable_names = tuple(
                f"VAR({i + 1})" for i in range(values.shape[1])
            )
        return self

    def _check_names(self, names: Optional[Sequence[str]]) -> None:
        if names is not None and tuple(names) != self._variable_names:
            raise DataShapeError(
                "monitored data variables do not match the calibration variables"
            )

    def statistics(self, data: _DataLike) -> Tuple[np.ndarray, np.ndarray]:
        """D and Q statistic values for new observations."""
        self._require_fitted()
        values, names, _ = _values_and_names(data)
        self._check_names(names)
        scaled = self.scaler.transform(values)
        return (
            hotelling_t2(self.pca, scaled),
            squared_prediction_error(self.pca, scaled),
        )

    def monitor(self, data: _DataLike) -> MonitoringResult:
        """Evaluate both control charts on new data."""
        self._require_fitted()
        values, names, timestamps = _values_and_names(data)
        self._check_names(names)
        scaled = self.scaler.transform(values)
        t2_values = hotelling_t2(self.pca, scaled)
        spe_values = squared_prediction_error(self.pca, scaled)
        d_chart = ControlChart("D", t2_values, self._t2_limits, timestamps)
        q_chart = ControlChart("Q", spe_values, self._spe_limits, timestamps)
        return MonitoringResult(
            d_chart=d_chart,
            q_chart=q_chart,
            detection_confidence=self.config.detection_confidence,
            consecutive_violations=self.config.consecutive_violations,
        )

    def diagnose(
        self,
        data: _DataLike,
        observation_indices: Optional[Sequence[int]] = None,
        count: int = 3,
    ) -> OmedaResult:
        """oMEDA diagnosis of an anomalous group of observations.

        When ``observation_indices`` is omitted, the group defaults to the
        first ``count`` observations that exceed the detection limit in either
        chart (the paper's choice).
        """
        self._require_fitted()
        values, names, _ = _values_and_names(data)
        self._check_names(names)
        scaled = self.scaler.transform(values)

        if observation_indices is None:
            result = self.monitor(data)
            indices = result.first_violation_indices(count)
            if indices.size == 0:
                raise DataShapeError(
                    "no observation exceeds the control limits; "
                    "pass observation_indices explicitly"
                )
        else:
            indices = np.asarray(list(observation_indices), dtype=int)

        contributions = omeda_contributions(self.pca, scaled, indices, scaled.shape[0])
        return OmedaResult(
            variable_names=self._variable_names,
            contributions=contributions,
            observation_indices=tuple(int(i) for i in indices),
        )
