"""Control limits for the D and Q statistics.

Two families of limits are provided:

* **theoretical** limits — the F-distribution-based limit of Tracy, Young and
  Mason for Hotelling's T^2, and Box's weighted chi-squared approximation
  (equivalent in practice to the Jackson-Mudholkar limit) for the SPE;
* **percentile** limits — empirical percentiles of the calibration statistics,
  which make no distributional assumption.

The paper draws both the 95 % and the 99 % limits on its control charts and
uses the 99 % one for detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np
from scipy import stats

from repro.common.exceptions import ConfigurationError
from repro.common.validation import as_1d_array, check_probability
from repro.mspc.pca import PCAModel

__all__ = [
    "t2_limit_theoretical",
    "spe_limit_theoretical",
    "percentile_limit",
    "ControlLimits",
]


def t2_limit_theoretical(n_samples: int, n_components: int, confidence: float) -> float:
    """F-based control limit for Hotelling's T^2 (phase-II monitoring).

    ``UCL = A (N^2 - 1) / (N (N - A)) * F_{1-alpha}(A, N - A)``
    """
    check_probability(confidence, "confidence")
    if n_samples <= n_components:
        raise ConfigurationError(
            "the number of calibration samples must exceed the number of components"
        )
    a = float(n_components)
    n = float(n_samples)
    f_value = stats.f.ppf(confidence, a, n - a)
    return a * (n ** 2 - 1.0) / (n * (n - a)) * f_value


def spe_limit_theoretical(residual_eigenvalues, confidence: float) -> float:
    """Box's weighted chi-squared control limit for the SPE.

    With ``theta_1 = sum(lambda)`` and ``theta_2 = sum(lambda^2)`` over the
    discarded eigenvalues, the SPE is approximately ``g * chi^2_h`` with
    ``g = theta_2 / theta_1`` and ``h = theta_1^2 / theta_2``.
    """
    check_probability(confidence, "confidence")
    eigenvalues = np.asarray(residual_eigenvalues, dtype=float).ravel()
    eigenvalues = eigenvalues[eigenvalues > 1e-15]
    if eigenvalues.size == 0:
        # A perfect model: any non-zero residual is out of control.
        return 0.0
    theta1 = float(eigenvalues.sum())
    theta2 = float((eigenvalues ** 2).sum())
    g = theta2 / theta1
    h = theta1 ** 2 / theta2
    return g * stats.chi2.ppf(confidence, h)


def percentile_limit(calibration_statistics, confidence: float) -> float:
    """Empirical percentile limit on calibration statistics."""
    check_probability(confidence, "confidence")
    values = as_1d_array(calibration_statistics, "calibration statistics")
    return float(np.percentile(values, 100.0 * confidence))


@dataclass(frozen=True)
class ControlLimits:
    """Control limits of one monitoring statistic at several confidence levels."""

    statistic: str
    limits: Mapping[float, float]

    def __post_init__(self) -> None:
        if not self.limits:
            raise ConfigurationError("at least one control limit is required")

    def at(self, confidence: float) -> float:
        """The limit at a given confidence level."""
        try:
            return float(self.limits[confidence])
        except KeyError:
            raise KeyError(
                f"no {self.statistic} limit computed for confidence {confidence}"
            ) from None

    @property
    def confidence_levels(self) -> Tuple[float, ...]:
        """Confidence levels for which limits are available (ascending)."""
        return tuple(sorted(self.limits))

    @classmethod
    def for_t2(
        cls,
        model: PCAModel,
        calibration_values,
        confidence_levels: Iterable[float],
        method: str = "theoretical",
    ) -> "ControlLimits":
        """Build T^2 limits from a fitted PCA model and calibration statistics."""
        limits: Dict[float, float] = {}
        for confidence in confidence_levels:
            if method == "theoretical":
                limits[confidence] = t2_limit_theoretical(
                    model.n_samples_, model.n_components, confidence
                )
            elif method == "percentile":
                limits[confidence] = percentile_limit(calibration_values, confidence)
            else:
                raise ConfigurationError(f"unknown limit method {method!r}")
        return cls("D", limits)

    @classmethod
    def for_spe(
        cls,
        model: PCAModel,
        calibration_values,
        confidence_levels: Iterable[float],
        method: str = "theoretical",
    ) -> "ControlLimits":
        """Build SPE limits from a fitted PCA model and calibration statistics."""
        limits: Dict[float, float] = {}
        for confidence in confidence_levels:
            if method == "theoretical":
                limits[confidence] = spe_limit_theoretical(
                    model.residual_eigenvalues_, confidence
                )
            elif method == "percentile":
                limits[confidence] = percentile_limit(calibration_values, confidence)
            else:
                raise ConfigurationError(f"unknown limit method {method!r}")
        return cls("Q", limits)
