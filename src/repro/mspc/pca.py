"""Principal Component Analysis fitted by singular value decomposition.

Given a mean-centred, auto-scaled calibration matrix ``X`` (N x M) and ``A``
principal components, PCA factors the data as ``X = T_A P_A' + E_A`` where
``T_A`` are the scores, ``P_A`` the loadings and ``E_A`` the residuals
(paper, Eq. 1).  Both the retained subspace (through Hotelling's T^2) and the
residual subspace (through the SPE) are monitored.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.exceptions import ConfigurationError, NotFittedError
from repro.common.validation import as_2d_array, check_matching_columns

__all__ = ["PCAModel"]


class PCAModel:
    """PCA with explicit access to scores, loadings, residuals and eigenvalues.

    Parameters
    ----------
    n_components:
        Number of principal components ``A`` to retain.  ``None`` selects the
        smallest number of components explaining at least
        ``variance_to_explain`` of the calibration variance.
    variance_to_explain:
        Target cumulative explained-variance ratio for automatic selection.
    """

    def __init__(
        self,
        n_components: Optional[int] = None,
        variance_to_explain: float = 0.90,
    ):
        if n_components is not None and n_components < 1:
            raise ConfigurationError("n_components must be >= 1 or None")
        if not 0.0 < variance_to_explain <= 1.0:
            raise ConfigurationError("variance_to_explain must be in (0, 1]")
        self._requested_components = n_components
        self.variance_to_explain = float(variance_to_explain)
        self._loadings: Optional[np.ndarray] = None
        self._eigenvalues: Optional[np.ndarray] = None
        self._all_eigenvalues: Optional[np.ndarray] = None
        self._n_samples: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._loadings is not None

    def _require_fitted(self) -> None:
        if self._loadings is None:
            raise NotFittedError("PCAModel must be fitted before use")

    @property
    def n_components(self) -> int:
        """Number of retained components ``A``."""
        self._require_fitted()
        return self._loadings.shape[1]

    @property
    def n_variables(self) -> int:
        """Number of original variables ``M``."""
        self._require_fitted()
        return self._loadings.shape[0]

    @property
    def n_samples_(self) -> int:
        """Number of calibration observations ``N``."""
        self._require_fitted()
        return int(self._n_samples)

    @property
    def loadings_(self) -> np.ndarray:
        """Loading matrix ``P_A`` of shape (M, A)."""
        self._require_fitted()
        return self._loadings

    @property
    def eigenvalues_(self) -> np.ndarray:
        """Variances of the retained components (length A)."""
        self._require_fitted()
        return self._eigenvalues

    @property
    def residual_eigenvalues_(self) -> np.ndarray:
        """Variances of the discarded components (length M - A, possibly empty)."""
        self._require_fitted()
        return self._all_eigenvalues[self.n_components:]

    @property
    def explained_variance_ratio_(self) -> np.ndarray:
        """Fraction of total variance captured by each retained component."""
        self._require_fitted()
        total = self._all_eigenvalues.sum()
        if total <= 0:
            return np.zeros(self.n_components)
        return self._eigenvalues / total

    # ------------------------------------------------------------------
    def fit(self, scaled_data) -> "PCAModel":
        """Fit the model on already-scaled calibration data."""
        array = as_2d_array(scaled_data, "calibration data")
        n_samples, n_variables = array.shape
        if n_samples < 2:
            raise ConfigurationError("PCA needs at least two calibration observations")

        # SVD of the (already centred) data; eigenvalues of the covariance are
        # singular values squared over (N - 1).
        _, singular_values, vt = np.linalg.svd(array, full_matrices=False)
        eigenvalues = (singular_values ** 2) / (n_samples - 1)

        if self._requested_components is not None:
            n_components = min(self._requested_components, len(eigenvalues))
        else:
            total = eigenvalues.sum()
            if total <= 0:
                n_components = 1
            else:
                cumulative = np.cumsum(eigenvalues) / total
                n_components = int(np.searchsorted(cumulative, self.variance_to_explain) + 1)
                n_components = min(max(n_components, 1), len(eigenvalues))

        self._loadings = vt[:n_components].T
        self._eigenvalues = eigenvalues[:n_components]
        self._all_eigenvalues = eigenvalues
        self._n_samples = n_samples
        return self

    def transform(self, scaled_data) -> np.ndarray:
        """Project observations onto the retained components (scores ``T_A``).

        The projection is evaluated with :func:`numpy.einsum` rather than
        ``@``: einsum accumulates each output element over the variable axis
        in a fixed order regardless of how many observations are projected,
        so scoring a single observation, a prefix of a run, or the whole run
        produces bitwise-identical values per row.  BLAS matmul does not
        guarantee this (it switches kernels by shape), and the live
        monitoring subsystem (:mod:`repro.live`) relies on sample-by-sample
        scores matching the batch path exactly.
        """
        self._require_fitted()
        array = as_2d_array(scaled_data, "data")
        check_matching_columns(self.n_variables, array, "data")
        return np.einsum("nm,ma->na", array, self._loadings)

    def reconstruct(self, scaled_data) -> np.ndarray:
        """Reconstruction of the observations from the retained subspace."""
        return np.einsum(
            "na,ma->nm", self.transform(scaled_data), self._loadings
        )

    def residuals(self, scaled_data) -> np.ndarray:
        """Residual matrix ``E_A`` of the observations."""
        self._require_fitted()
        array = as_2d_array(scaled_data, "data")
        check_matching_columns(self.n_variables, array, "data")
        return array - self.reconstruct(array)
