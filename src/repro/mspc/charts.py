"""Control charts and the consecutive-violation detection rule.

A :class:`ControlChart` holds a monitoring statistic evaluated over a sequence
of observations together with its control limits.  The paper's detection rule
flags an anomalous event when **three consecutive observations** exceed the
99 % control limit; :func:`find_violation_runs` and :func:`detect_anomaly`
implement that rule for any run length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.common.validation import as_1d_array
from repro.mspc.limits import ControlLimits

__all__ = ["ControlChart", "ViolationRun", "find_violation_runs", "detect_anomaly"]


@dataclass(frozen=True)
class ViolationRun:
    """A maximal run of consecutive above-limit observations.

    Attributes
    ----------
    start_index / end_index:
        First and last observation index of the run (inclusive).
    """

    start_index: int
    end_index: int

    @property
    def length(self) -> int:
        """Number of observations in the run."""
        return self.end_index - self.start_index + 1

    def indices(self) -> np.ndarray:
        """All observation indices of the run."""
        return np.arange(self.start_index, self.end_index + 1)


def find_violation_runs(values, limit: float) -> List[ViolationRun]:
    """Return all maximal runs of consecutive observations above ``limit``."""
    values = as_1d_array(values, "statistic values")
    above = values > float(limit)
    runs: List[ViolationRun] = []
    start: Optional[int] = None
    for index, flag in enumerate(above):
        if flag and start is None:
            start = index
        elif not flag and start is not None:
            runs.append(ViolationRun(start, index - 1))
            start = None
    if start is not None:
        runs.append(ViolationRun(start, len(above) - 1))
    return runs


def detect_anomaly(
    values,
    limit: float,
    consecutive: int = 3,
) -> Optional[int]:
    """Index at which an anomaly is flagged, or ``None`` if never.

    The anomaly is flagged at the ``consecutive``-th observation of the first
    run of at least ``consecutive`` consecutive above-limit observations —
    i.e. the moment the detection rule actually fires.
    """
    if consecutive < 1:
        raise ConfigurationError("consecutive must be >= 1")
    for run in find_violation_runs(values, limit):
        if run.length >= consecutive:
            return run.start_index + consecutive - 1
    return None


@dataclass
class ControlChart:
    """A monitoring statistic with its control limits over a data window.

    Attributes
    ----------
    statistic:
        Chart name (``"D"`` for Hotelling's T^2, ``"Q"`` for the SPE).
    values:
        Statistic value per observation.
    limits:
        Control limits at one or more confidence levels.
    timestamps:
        Optional observation timestamps (simulation hours).
    """

    statistic: str
    values: np.ndarray
    limits: ControlLimits
    timestamps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.values = as_1d_array(self.values, "statistic values")
        if self.timestamps is not None:
            self.timestamps = as_1d_array(self.timestamps, "timestamps")
            if self.timestamps.shape[0] != self.values.shape[0]:
                raise ConfigurationError(
                    "timestamps and statistic values must have the same length"
                )

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def violations(self, confidence: float) -> np.ndarray:
        """Boolean mask of observations above the limit at ``confidence``."""
        return self.values > self.limits.at(confidence)

    def violation_fraction(self, confidence: float) -> float:
        """Fraction of observations above the limit at ``confidence``."""
        return float(np.mean(self.violations(confidence)))

    def violation_runs(self, confidence: float) -> List[ViolationRun]:
        """Maximal violation runs at ``confidence``."""
        return find_violation_runs(self.values, self.limits.at(confidence))

    def _start_index(self, start_time: Optional[float]) -> int:
        """First observation index at or after ``start_time`` (0 when None)."""
        if start_time is None:
            return 0
        if self.timestamps is None:
            return int(start_time)
        return int(np.searchsorted(self.timestamps, float(start_time), side="left"))

    def detection_index(
        self,
        confidence: float,
        consecutive: int = 3,
        start_time: Optional[float] = None,
    ) -> Optional[int]:
        """Observation index at which the detection rule fires, or ``None``.

        ``start_time`` restricts the search to observations at or after that
        timestamp — used to separate genuine detections of an anomaly that
        begins at a known time from false alarms that precede it.
        """
        offset = self._start_index(start_time)
        if offset >= self.values.shape[0]:
            return None
        index = detect_anomaly(
            self.values[offset:], self.limits.at(confidence), consecutive
        )
        return None if index is None else index + offset

    def detection_time(
        self,
        confidence: float,
        consecutive: int = 3,
        start_time: Optional[float] = None,
    ) -> Optional[float]:
        """Timestamp at which the detection rule fires, or ``None``."""
        index = self.detection_index(confidence, consecutive, start_time)
        if index is None:
            return None
        if self.timestamps is None:
            return float(index)
        return float(self.timestamps[index])

    def first_violating_indices(
        self,
        confidence: float,
        count: int = 3,
        start_time: Optional[float] = None,
    ) -> np.ndarray:
        """Indices of the first ``count`` observations above the limit.

        These are the observations the paper feeds to oMEDA for diagnosis
        ("the set of the first observations that surpass control limits").
        ``start_time`` restricts the search to observations at or after it.
        """
        offset = self._start_index(start_time)
        mask = self.violations(confidence)
        mask[:offset] = False
        indices = np.where(mask)[0]
        return indices[:count]
