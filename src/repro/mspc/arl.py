"""Average Run Length (ARL) computation.

The paper reports, for every anomalous scenario, the lapsed time between the
start of the anomalous event and its detection in the control charts (the run
length), averaged over the repeated runs of the scenario (the ARL).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np


__all__ = ["run_length", "average_run_length", "RunLengthAccumulator"]


def run_length(
    detection_time_hours: Optional[float],
    anomaly_start_hour: float,
) -> Optional[float]:
    """Time between anomaly onset and detection, or ``None`` if undetected.

    A detection recorded *before* the anomaly begins (a false alarm) does not
    count as a detection of the anomaly and also returns ``None``.
    """
    if detection_time_hours is None:
        return None
    elapsed = float(detection_time_hours) - float(anomaly_start_hour)
    if elapsed < 0:
        return None
    return elapsed


def average_run_length(
    detection_times_hours: Iterable[Optional[float]],
    anomaly_start_hour: float,
    undetected_penalty_hours: Optional[float] = None,
) -> Optional[float]:
    """Average run length over repeated runs of the same scenario.

    Parameters
    ----------
    detection_times_hours:
        Detection time of each run (``None`` for runs where the anomaly was
        never detected).
    anomaly_start_hour:
        Hour at which the anomaly begins in every run.
    undetected_penalty_hours:
        Value to use for undetected runs.  ``None`` (the default) simply
        excludes them from the average; the number of such runs can be
        reported separately.

    Returns
    -------
    The ARL in hours, or ``None`` when no run produced a usable run length.
    """
    lengths: List[float] = []
    for detection_time in detection_times_hours:
        length = run_length(detection_time, anomaly_start_hour)
        if length is None:
            if undetected_penalty_hours is not None:
                lengths.append(float(undetected_penalty_hours))
            continue
        lengths.append(length)
    if not lengths:
        return None
    return float(np.mean(lengths))


class RunLengthAccumulator:
    """Streaming ARL reducer: consume one run length at a time.

    The streaming analysis stage feeds runs through :meth:`update` as they
    are produced, so no per-run data needs to stay alive for the final ARL.
    Only the run-length scalars are retained (a few bytes per run), and the
    final average uses the same ``np.mean`` reduction as the eager path, so
    the result is bitwise-identical to averaging the full list at the end.
    """

    def __init__(self) -> None:
        self._lengths: List[Optional[float]] = []

    def update(self, length: Optional[float]) -> None:
        """Record the run length of one run (``None`` when undetected)."""
        self._lengths.append(None if length is None else float(length))

    def merge(self, other: "RunLengthAccumulator") -> "RunLengthAccumulator":
        """Absorb another accumulator (e.g. from a different shard)."""
        self._lengths.extend(other._lengths)
        return self

    @property
    def n_runs(self) -> int:
        """Number of runs recorded."""
        return len(self._lengths)

    @property
    def n_detected(self) -> int:
        """Number of runs with a usable run length."""
        return sum(1 for length in self._lengths if length is not None)

    @property
    def detection_rate(self) -> float:
        """Fraction of runs detected (0.0 when no runs were recorded)."""
        if not self._lengths:
            return 0.0
        return self.n_detected / len(self._lengths)

    @property
    def run_lengths(self) -> List[Optional[float]]:
        """The recorded run lengths, in arrival order."""
        return list(self._lengths)

    @property
    def arl_hours(self) -> Optional[float]:
        """Average run length over the detected runs, in hours."""
        detected = [length for length in self._lengths if length is not None]
        if not detected:
            return None
        return float(np.mean(detected))
