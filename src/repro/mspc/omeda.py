"""oMEDA: observation-based diagnosis of anomalous events.

oMEDA (Camacho, 2011) relates a group of observations — here, the first
observations that exceed the control limits — back to the original variables.
The result is a bar per variable whose magnitude reflects how much the
variable contributes to the deviation of the group and whose sign indicates
the direction of the deviation (positive = above normal operation, negative =
below), exactly the plots shown in Figures 4 and 5 of the paper.

The implementation follows the formulation used by the MEDA Toolbox: with the
auto-scaled data ``X``, its projection ``X_hat`` onto the retained PCA
subspace and a dummy vector ``d`` selecting (and optionally weighting) the
observations of interest,

``d^2_A(m) = sum_n d_n * (2 * x_{n,m} - xhat_{n,m}) * |xhat_{n,m}|``

normalized by the norm of the dummy vector.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.exceptions import DataShapeError
from repro.common.validation import as_1d_array, as_2d_array
from repro.mspc.pca import PCAModel

__all__ = ["omeda", "omeda_contributions"]


def omeda(model: PCAModel, scaled_data, dummy) -> np.ndarray:
    """Compute the oMEDA vector for a dummy-designated group of observations.

    Parameters
    ----------
    model:
        A fitted PCA model.
    scaled_data:
        Auto-scaled observations (N x M), scaled with the calibration scaler.
    dummy:
        Length-N designation vector: typically 1 for observations in the
        anomalous group and 0 elsewhere; two groups can be contrasted with
        +1 / -1 entries.

    Returns
    -------
    A length-M vector of per-variable contributions (the bar heights of the
    oMEDA plot).
    """
    data = as_2d_array(scaled_data, "scaled data")
    weights = as_1d_array(dummy, "dummy")
    if weights.shape[0] != data.shape[0]:
        raise DataShapeError(
            f"dummy has {weights.shape[0]} entries for {data.shape[0]} observations"
        )
    if not np.any(weights != 0):
        raise DataShapeError("the dummy vector must designate at least one observation")

    reconstruction = model.reconstruct(data)
    # einsum keeps the reduction over observations strictly in index order,
    # so designating the same observations inside a shorter window (a live
    # monitor's buffer) or a longer one (the full post-hoc run) yields
    # bitwise-identical contributions: the zero-weighted rows are exact
    # identities however the window is padded.
    contributions = np.einsum(
        "nm,n->m", (2.0 * data - reconstruction) * np.abs(reconstruction), weights
    )
    norm = np.sqrt(float(weights @ weights))
    return contributions / norm


def omeda_contributions(
    model: PCAModel,
    scaled_data,
    observation_indices: Sequence[int],
    n_observations: Optional[int] = None,
) -> np.ndarray:
    """oMEDA for a plain group of observations given by their indices.

    This is the common case in the paper: the group is the set of the first
    observations that surpassed the control limits.
    """
    data = as_2d_array(scaled_data, "scaled data")
    total = data.shape[0] if n_observations is None else int(n_observations)
    indices = np.asarray(list(observation_indices), dtype=int)
    if indices.size == 0:
        raise DataShapeError("observation_indices must not be empty")
    if np.any(indices < 0) or np.any(indices >= total):
        raise DataShapeError("observation_indices out of range")
    dummy = np.zeros(total)
    dummy[indices] = 1.0
    return omeda(model, data, dummy)
