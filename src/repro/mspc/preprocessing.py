"""Data preprocessing for MSPC: mean-centring and auto-scaling.

The paper (Section III-A) builds the PCA model on mean-centred and auto-scaled
data, i.e. every variable is normalized to zero mean and unit variance using
the statistics of the calibration data.  New observations are scaled with the
*calibration* statistics, never their own.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.exceptions import NotFittedError
from repro.common.validation import as_2d_array, check_matching_columns

__all__ = ["AutoScaler"]


class AutoScaler:
    """Mean-centring and unit-variance scaling fitted on calibration data.

    Variables with zero variance in the calibration data (e.g. a valve that
    never moves) are centred but left unscaled, so they cannot produce NaNs;
    their post-scaling variance is zero, which PCA then simply ignores.
    """

    def __init__(self):
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._mean is not None

    @property
    def mean_(self) -> np.ndarray:
        """Per-variable calibration mean."""
        self._require_fitted()
        return self._mean

    @property
    def std_(self) -> np.ndarray:
        """Per-variable calibration standard deviation (1.0 where degenerate)."""
        self._require_fitted()
        return self._std

    def _require_fitted(self) -> None:
        if self._mean is None:
            raise NotFittedError("AutoScaler must be fitted before use")

    def fit(self, data) -> "AutoScaler":
        """Learn per-variable means and standard deviations."""
        array = as_2d_array(data, "calibration data")
        self._mean = array.mean(axis=0)
        std = array.std(axis=0, ddof=1) if array.shape[0] > 1 else np.zeros(array.shape[1])
        std = np.where(std > 1e-12, std, 1.0)
        self._std = std
        return self

    def transform(self, data) -> np.ndarray:
        """Scale observations with the calibration statistics."""
        self._require_fitted()
        array = as_2d_array(data, "data")
        check_matching_columns(self._mean.shape[0], array, "data")
        return (array - self._mean) / self._std

    def fit_transform(self, data) -> np.ndarray:
        """Fit on ``data`` and return the scaled version of it."""
        return self.fit(data).transform(data)

    def inverse_transform(self, scaled) -> np.ndarray:
        """Map scaled observations back to engineering units."""
        self._require_fitted()
        array = as_2d_array(scaled, "scaled data")
        check_matching_columns(self._mean.shape[0], array, "scaled data")
        return array * self._std + self._mean
