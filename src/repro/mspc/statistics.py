"""Monitoring statistics: Hotelling's T^2 (D-statistic) and the SPE (Q-statistic).

For every observation, the D-statistic summarizes its position inside the
retained PCA subspace (scores weighted by the inverse component variances) and
the Q-statistic summarizes the squared distance to that subspace (the residual
sum of squares).  An unexpected change in the original variables pushes one or
both statistics over their control limits.
"""

from __future__ import annotations

import numpy as np

from repro.common.exceptions import DataShapeError
from repro.mspc.pca import PCAModel

__all__ = ["hotelling_t2", "squared_prediction_error"]


def hotelling_t2(model: PCAModel, scaled_data) -> np.ndarray:
    """D-statistic (Hotelling's T^2) of each observation.

    ``T^2_n = sum_a  t_{n,a}^2 / lambda_a`` where ``t`` are the scores and
    ``lambda`` the calibration variances of the retained components.
    """
    scores = model.transform(scaled_data)
    eigenvalues = model.eigenvalues_
    if np.any(eigenvalues <= 0):
        raise DataShapeError("PCA eigenvalues must be positive to compute T^2")
    return np.sum((scores ** 2) / eigenvalues, axis=1)


def squared_prediction_error(model: PCAModel, scaled_data) -> np.ndarray:
    """Q-statistic (SPE) of each observation: squared residual norm."""
    residuals = model.residuals(scaled_data)
    return np.sum(residuals ** 2, axis=1)
