"""Persistence for :class:`~repro.datasets.dataset.ProcessDataset`.

Two formats are supported:

* NPZ (binary, lossless) — preferred for experiment campaigns.
* CSV (text) — convenient for inspection and for exporting figure data.

Whole :class:`~repro.process.simulator.SimulationResult` objects (both data
views plus config, shutdown state and metadata) can also be round-tripped
through a single NPZ file; the campaign result cache in
:mod:`repro.experiments.parallel` is built on this.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.common.exceptions import DataShapeError
from repro.datasets.dataset import ProcessDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.process.simulator import SimulationResult

__all__ = [
    "save_npz",
    "load_npz",
    "save_csv",
    "load_csv",
    "save_result_npz",
    "load_result_npz",
    "peek_result_npz",
]

_PathLike = Union[str, Path]


def save_npz(dataset: ProcessDataset, path: _PathLike) -> Path:
    """Save a dataset to a compressed ``.npz`` file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        values=dataset.values,
        variable_names=np.array(dataset.variable_names, dtype=object),
        timestamps=dataset.timestamps,
        metadata=np.array(json.dumps(dataset.metadata, default=str)),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_npz(path: _PathLike) -> ProcessDataset:
    """Load a dataset previously written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=True) as payload:
        values = payload["values"]
        names = [str(name) for name in payload["variable_names"]]
        timestamps = payload["timestamps"]
        metadata = json.loads(str(payload["metadata"]))
    return ProcessDataset(values, names, timestamps, metadata)


def save_result_npz(result: "SimulationResult", path: _PathLike) -> Path:
    """Save a complete simulation result to one compressed ``.npz`` file.

    The file holds both data views, the simulation configuration, the
    shutdown state and the run metadata, so :func:`load_result_npz` can
    reconstruct a result indistinguishable from the freshly simulated one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {}
    for view, dataset in (
        ("controller", result.controller_data),
        ("process", result.process_data),
    ):
        payload[f"{view}_values"] = dataset.values
        payload[f"{view}_names"] = np.array(dataset.variable_names, dtype=object)
        payload[f"{view}_timestamps"] = dataset.timestamps
        payload[f"{view}_metadata"] = np.array(
            json.dumps(dataset.metadata, default=str)
        )
    payload["config"] = np.array(json.dumps(asdict(result.config)))
    payload["shutdown"] = np.array(
        json.dumps(
            {
                "time_hours": result.shutdown_time_hours,
                "reason": result.shutdown_reason,
            }
        )
    )
    payload["metadata"] = np.array(json.dumps(result.metadata, default=str))
    np.savez_compressed(path, **payload)
    return path


def load_result_npz(path: _PathLike) -> "SimulationResult":
    """Load a simulation result previously written by :func:`save_result_npz`."""
    from repro.common.config import SimulationConfig
    from repro.process.simulator import SimulationResult

    with np.load(Path(path), allow_pickle=True) as payload:
        datasets = {}
        for view in ("controller", "process"):
            datasets[view] = ProcessDataset(
                payload[f"{view}_values"],
                [str(name) for name in payload[f"{view}_names"]],
                payload[f"{view}_timestamps"],
                json.loads(str(payload[f"{view}_metadata"])),
            )
        config = SimulationConfig(**json.loads(str(payload["config"])))
        shutdown = json.loads(str(payload["shutdown"]))
        metadata = json.loads(str(payload["metadata"]))
    return SimulationResult(
        controller_data=datasets["controller"],
        process_data=datasets["process"],
        shutdown_time_hours=shutdown["time_hours"],
        shutdown_reason=shutdown["reason"],
        config=config,
        metadata=metadata,
    )


def peek_result_npz(path: _PathLike) -> dict:
    """Read a result file's config, shutdown state and metadata — cheaply.

    ``np.load`` on an NPZ is lazy: member arrays decompress only on access,
    so reading just the JSON members costs a few kilobytes however large the
    data views are.  The streaming analysis tooling uses this to inspect and
    prune :class:`~repro.experiments.parallel.ResultCache` entries without
    pulling whole campaigns into memory.
    """
    with np.load(Path(path), allow_pickle=True) as payload:
        return {
            "config": json.loads(str(payload["config"])),
            "shutdown": json.loads(str(payload["shutdown"])),
            "metadata": json.loads(str(payload["metadata"])),
        }


def save_csv(dataset: ProcessDataset, path: _PathLike) -> Path:
    """Save a dataset to CSV with a ``time`` column followed by variables."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time"] + list(dataset.variable_names))
        for time, row in zip(dataset.timestamps, dataset.values):
            writer.writerow([repr(float(time))] + [repr(float(v)) for v in row])
    return path


def load_csv(path: _PathLike) -> ProcessDataset:
    """Load a dataset previously written by :func:`save_csv`."""
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header or header[0] != "time" or len(header) < 2:
            raise DataShapeError(f"{path} is not a ProcessDataset CSV file")
        names = header[1:]
        timestamps = []
        rows = []
        for record in reader:
            if not record:
                continue
            timestamps.append(float(record[0]))
            rows.append([float(value) for value in record[1:]])
    if not rows:
        raise DataShapeError(f"{path} contains no observations")
    return ProcessDataset(np.array(rows), names, np.array(timestamps))
