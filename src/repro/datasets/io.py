"""Persistence for :class:`~repro.datasets.dataset.ProcessDataset`.

Two formats are supported:

* NPZ (binary, lossless) — preferred for experiment campaigns.
* CSV (text) — convenient for inspection and for exporting figure data.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.common.exceptions import DataShapeError
from repro.datasets.dataset import ProcessDataset

__all__ = ["save_npz", "load_npz", "save_csv", "load_csv"]

_PathLike = Union[str, Path]


def save_npz(dataset: ProcessDataset, path: _PathLike) -> Path:
    """Save a dataset to a compressed ``.npz`` file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        values=dataset.values,
        variable_names=np.array(dataset.variable_names, dtype=object),
        timestamps=dataset.timestamps,
        metadata=np.array(json.dumps(dataset.metadata, default=str)),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_npz(path: _PathLike) -> ProcessDataset:
    """Load a dataset previously written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=True) as payload:
        values = payload["values"]
        names = [str(name) for name in payload["variable_names"]]
        timestamps = payload["timestamps"]
        metadata = json.loads(str(payload["metadata"]))
    return ProcessDataset(values, names, timestamps, metadata)


def save_csv(dataset: ProcessDataset, path: _PathLike) -> Path:
    """Save a dataset to CSV with a ``time`` column followed by variables."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time"] + list(dataset.variable_names))
        for time, row in zip(dataset.timestamps, dataset.values):
            writer.writerow([repr(float(time))] + [repr(float(v)) for v in row])
    return path


def load_csv(path: _PathLike) -> ProcessDataset:
    """Load a dataset previously written by :func:`save_csv`."""
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header or header[0] != "time" or len(header) < 2:
            raise DataShapeError(f"{path} is not a ProcessDataset CSV file")
        names = header[1:]
        timestamps = []
        rows = []
        for record in reader:
            if not record:
                continue
            timestamps.append(float(record[0]))
            rows.append([float(value) for value in record[1:]])
    if not rows:
        raise DataShapeError(f"{path} contains no observations")
    return ProcessDataset(np.array(rows), names, np.array(timestamps))
