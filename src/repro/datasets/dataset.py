"""The :class:`ProcessDataset` container.

MSPC operates on two-dimensional N x M matrices where M process variables are
measured for N observations.  :class:`ProcessDataset` wraps such a matrix
together with variable names and (optionally) observation timestamps, and
offers the slicing, selection and concatenation operations the rest of the
library relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.exceptions import DataShapeError
from repro.common.validation import as_2d_array

__all__ = ["ProcessDataset"]


class ProcessDataset:
    """An N x M matrix of process observations with named variables.

    Parameters
    ----------
    values:
        Array-like of shape ``(n_observations, n_variables)``.
    variable_names:
        Names of the M variables.  Must be unique.
    timestamps:
        Optional observation timestamps (e.g. simulation hours) of length N.
    metadata:
        Free-form dictionary carried along with the dataset (scenario name,
        seed, run index, ...).
    """

    def __init__(
        self,
        values,
        variable_names: Sequence[str],
        timestamps: Optional[Sequence[float]] = None,
        metadata: Optional[Dict[str, object]] = None,
    ):
        self._values = as_2d_array(values, "values")
        names = [str(name) for name in variable_names]
        if len(names) != self._values.shape[1]:
            raise DataShapeError(
                f"{len(names)} variable names for {self._values.shape[1]} columns"
            )
        if len(set(names)) != len(names):
            raise DataShapeError("variable names must be unique")
        self._variable_names: Tuple[str, ...] = tuple(names)

        if timestamps is None:
            self._timestamps = np.arange(self._values.shape[0], dtype=float)
        else:
            self._timestamps = np.asarray(timestamps, dtype=float).ravel()
            if self._timestamps.shape[0] != self._values.shape[0]:
                raise DataShapeError(
                    f"{self._timestamps.shape[0]} timestamps for "
                    f"{self._values.shape[0]} observations"
                )
        self.metadata: Dict[str, object] = dict(metadata or {})

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The underlying ``(N, M)`` array (a defensive copy is *not* made)."""
        return self._values

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Names of the M variables."""
        return self._variable_names

    @property
    def timestamps(self) -> np.ndarray:
        """Observation timestamps of length N."""
        return self._timestamps

    @property
    def n_observations(self) -> int:
        """Number of observations (rows)."""
        return self._values.shape[0]

    @property
    def n_variables(self) -> int:
        """Number of variables (columns)."""
        return self._values.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_observations, n_variables)``."""
        return self._values.shape

    def __len__(self) -> int:
        return self.n_observations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessDataset(n_observations={self.n_observations}, "
            f"n_variables={self.n_variables})"
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def index_of(self, variable: str) -> int:
        """Return the column index of a named variable."""
        try:
            return self._variable_names.index(variable)
        except ValueError:
            raise KeyError(
                f"variable {variable!r} not in dataset "
                f"(available: {', '.join(self._variable_names[:8])}...)"
            ) from None

    def column(self, variable: str) -> np.ndarray:
        """Return the time series of a named variable."""
        return self._values[:, self.index_of(variable)]

    def has_variable(self, variable: str) -> bool:
        """Whether the dataset contains a variable with the given name."""
        return variable in self._variable_names

    def select_variables(self, variables: Sequence[str]) -> "ProcessDataset":
        """Return a dataset restricted to the given variables (in order)."""
        indices = [self.index_of(name) for name in variables]
        return ProcessDataset(
            self._values[:, indices],
            [self._variable_names[i] for i in indices],
            self._timestamps,
            dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def select_rows(self, indices) -> "ProcessDataset":
        """Return a dataset restricted to the given observation indices."""
        indices = np.asarray(indices)
        return ProcessDataset(
            self._values[indices],
            self._variable_names,
            self._timestamps[indices],
            dict(self.metadata),
        )

    def slice_time(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> "ProcessDataset":
        """Return observations whose timestamps fall inside ``[start, end)``."""
        mask = np.ones(self.n_observations, dtype=bool)
        if start is not None:
            mask &= self._timestamps >= float(start)
        if end is not None:
            mask &= self._timestamps < float(end)
        if not np.any(mask):
            raise DataShapeError(
                f"time slice [{start}, {end}) selects no observations"
            )
        return self.select_rows(np.where(mask)[0])

    def head(self, n: int) -> "ProcessDataset":
        """First ``n`` observations."""
        return self.select_rows(np.arange(min(n, self.n_observations)))

    def tail(self, n: int) -> "ProcessDataset":
        """Last ``n`` observations."""
        n = min(n, self.n_observations)
        return self.select_rows(np.arange(self.n_observations - n, self.n_observations))

    # ------------------------------------------------------------------
    # Statistics and transformation
    # ------------------------------------------------------------------
    def mean(self) -> np.ndarray:
        """Per-variable mean."""
        return self._values.mean(axis=0)

    def std(self, ddof: int = 1) -> np.ndarray:
        """Per-variable standard deviation."""
        if self.n_observations <= ddof:
            return np.zeros(self.n_variables)
        return self._values.std(axis=0, ddof=ddof)

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Return a mapping from variable name to its time series."""
        return {
            name: self._values[:, i] for i, name in enumerate(self._variable_names)
        }

    def copy(self) -> "ProcessDataset":
        """A deep copy of the dataset."""
        return ProcessDataset(
            self._values.copy(),
            self._variable_names,
            self._timestamps.copy(),
            dict(self.metadata),
        )

    def with_metadata(self, **kwargs) -> "ProcessDataset":
        """Return a shallow copy with additional metadata entries."""
        metadata = dict(self.metadata)
        metadata.update(kwargs)
        return ProcessDataset(
            self._values, self._variable_names, self._timestamps, metadata
        )

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(datasets: Sequence["ProcessDataset"]) -> "ProcessDataset":
        """Stack several datasets that share the same variables, row-wise."""
        if not datasets:
            raise DataShapeError("cannot concatenate an empty list of datasets")
        names = datasets[0].variable_names
        for dataset in datasets[1:]:
            if dataset.variable_names != names:
                raise DataShapeError(
                    "datasets must share identical variable names to concatenate"
                )
        values = np.vstack([dataset.values for dataset in datasets])
        timestamps = np.concatenate([dataset.timestamps for dataset in datasets])
        return ProcessDataset(values, names, timestamps, dict(datasets[0].metadata))

    def hstack(self, other: "ProcessDataset", suffix: str = "") -> "ProcessDataset":
        """Join two datasets column-wise (same number of observations).

        Name collisions in ``other`` are resolved by appending ``suffix``.
        """
        if other.n_observations != self.n_observations:
            raise DataShapeError(
                "datasets must have the same number of observations to hstack"
            )
        other_names: List[str] = []
        for name in other.variable_names:
            if name in self._variable_names or name in other_names:
                if not suffix:
                    raise DataShapeError(
                        f"duplicate variable {name!r}; provide a suffix"
                    )
                name = f"{name}{suffix}"
            other_names.append(name)
        values = np.hstack([self._values, other.values])
        names = list(self._variable_names) + other_names
        return ProcessDataset(values, names, self._timestamps, dict(self.metadata))

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle as a plain tuple, skipping ``__init__`` re-validation.

        Campaign workers ship datasets across process boundaries for every
        run, so (de)serialization must not pay the name/shape checks again.
        """
        return (self._values, self._variable_names, self._timestamps, self.metadata)

    def __setstate__(self, state) -> None:
        self._values, self._variable_names, self._timestamps, self.metadata = state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessDataset):
            return NotImplemented
        return (
            self._variable_names == other._variable_names
            and self._values.shape == other._values.shape
            and np.allclose(self._values, other._values)
            and np.allclose(self._timestamps, other._timestamps)
        )
