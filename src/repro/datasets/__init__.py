"""Labelled process datasets, I/O helpers and synthetic generators."""

from repro.datasets.dataset import ProcessDataset
from repro.datasets.io import (
    save_npz,
    load_npz,
    save_csv,
    load_csv,
    save_result_npz,
    load_result_npz,
)
from repro.datasets.generator import (
    make_correlated_normal_dataset,
    make_shifted_dataset,
    make_latent_structure_dataset,
)

__all__ = [
    "ProcessDataset",
    "save_npz",
    "load_npz",
    "save_csv",
    "load_csv",
    "save_result_npz",
    "load_result_npz",
    "make_correlated_normal_dataset",
    "make_shifted_dataset",
    "make_latent_structure_dataset",
]
