"""Synthetic dataset generators.

These generators provide controlled, fast-to-build datasets with a known
latent structure.  They are used throughout the test-suite to validate the
MSPC mathematics independently of the Tennessee-Eastman substrate, and in the
benchmarks to exercise the statistical machinery at scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.common.randomness import RandomStream
from repro.datasets.dataset import ProcessDataset

__all__ = [
    "make_correlated_normal_dataset",
    "make_shifted_dataset",
    "make_latent_structure_dataset",
]


def _default_names(n_variables: int) -> list:
    return [f"VAR({i + 1})" for i in range(n_variables)]


def make_correlated_normal_dataset(
    n_observations: int = 500,
    n_variables: int = 10,
    correlation: float = 0.7,
    seed: int = 0,
    variable_names: Optional[Sequence[str]] = None,
) -> ProcessDataset:
    """Gaussian observations with a common factor driving all variables.

    Each variable is ``sqrt(correlation) * f + sqrt(1 - correlation) * e`` for
    a shared factor ``f`` and independent noise ``e``, giving a pairwise
    correlation of approximately ``correlation``.
    """
    if not 0.0 <= correlation < 1.0:
        raise ConfigurationError("correlation must be in [0, 1)")
    stream = RandomStream(seed, "correlated-normal")
    factor = stream.standard_normal((n_observations, 1))
    noise = stream.standard_normal((n_observations, n_variables))
    values = np.sqrt(correlation) * factor + np.sqrt(1.0 - correlation) * noise
    names = list(variable_names) if variable_names else _default_names(n_variables)
    return ProcessDataset(values, names, metadata={"generator": "correlated_normal"})


def make_latent_structure_dataset(
    n_observations: int = 500,
    n_variables: int = 20,
    n_latent: int = 3,
    noise_scale: float = 0.1,
    seed: int = 0,
    variable_names: Optional[Sequence[str]] = None,
) -> ProcessDataset:
    """Observations generated from ``n_latent`` latent factors plus noise.

    The resulting covariance has exactly ``n_latent`` dominant directions,
    which makes the dataset ideal for testing PCA component selection and the
    T^2 / SPE split.
    """
    if n_latent < 1 or n_latent > n_variables:
        raise ConfigurationError("n_latent must be in [1, n_variables]")
    stream = RandomStream(seed, "latent-structure")
    loadings = stream.standard_normal((n_latent, n_variables))
    scores = stream.standard_normal((n_observations, n_latent))
    noise = noise_scale * stream.standard_normal((n_observations, n_variables))
    values = scores @ loadings + noise
    names = list(variable_names) if variable_names else _default_names(n_variables)
    return ProcessDataset(
        values,
        names,
        metadata={"generator": "latent_structure", "n_latent": n_latent},
    )


def make_shifted_dataset(
    base: ProcessDataset,
    shift_variables: Sequence[str],
    shift_magnitude: float = 3.0,
    start_fraction: float = 0.5,
    seed: int = 0,
) -> ProcessDataset:
    """Copy ``base`` and add a mean shift to selected variables.

    The shift (expressed in multiples of each variable's standard deviation)
    begins at ``start_fraction`` of the observations and lasts to the end,
    emulating a persistent disturbance or attack.
    """
    if not 0.0 <= start_fraction < 1.0:
        raise ConfigurationError("start_fraction must be in [0, 1)")
    shifted = base.copy()
    start = int(round(start_fraction * shifted.n_observations))
    stds = shifted.std()
    stds[stds == 0.0] = 1.0
    for name in shift_variables:
        index = shifted.index_of(name)
        shifted.values[start:, index] += shift_magnitude * stds[index]
    shifted.metadata.update(
        {
            "generator": "shifted",
            "shift_variables": list(shift_variables),
            "shift_magnitude": float(shift_magnitude),
            "shift_start_index": start,
        }
    )
    return shifted
