"""Minimal TOML emitter for campaign specs.

The standard library reads TOML (:mod:`tomllib`, Python 3.11+) but cannot
write it, and the project deliberately adds no third-party dependency for
what specs need: tables, arrays of tables, and scalar/list values.  This
emitter covers exactly that subset and is verified round-trip-exact against
:mod:`tomllib` by the spec test suite (floats via ``repr``, which is
shortest-round-trip in Python 3, so numeric values survive bit-for-bit).
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, List, Mapping, Optional, Sequence

__all__ = ["dumps_toml"]

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def _format_key(key: Any) -> str:
    if not isinstance(key, str):
        raise TypeError(f"TOML keys must be strings, got {key!r}")
    if _BARE_KEY.match(key):
        return key
    return json.dumps(key, ensure_ascii=False).replace("\x7f", "\\u007f")


def _format_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return repr(value)
    if isinstance(value, str):
        # JSON escaping with ensure_ascii=False is TOML-compatible: control
        # characters come out as 4-digit \uXXXX escapes and everything else
        # (including non-BMP characters, which TOML forbids as surrogate
        # pairs) is embedded as raw UTF-8.  DEL is the one character JSON
        # leaves raw but TOML forbids.
        return json.dumps(value, ensure_ascii=False).replace("\x7f", "\\u007f")
    raise TypeError(f"cannot serialize {type(value).__name__} value {value!r} to TOML")


def _is_sequence(value: Any) -> bool:
    return isinstance(value, Sequence) and not isinstance(value, (str, bytes))


def _is_table_array(value: Any) -> bool:
    return (
        _is_sequence(value)
        and len(value) > 0
        and all(isinstance(item, Mapping) for item in value)
    )


def _format_inline(value: Any) -> str:
    if _is_sequence(value):
        return "[" + ", ".join(_format_inline(item) for item in value) + "]"
    return _format_scalar(value)


def _emit(
    mapping: Mapping[str, Any],
    path: List[str],
    lines: List[str],
    header: Optional[str],
) -> None:
    """Emit one table body: header, scalar keys, then nested (array-)tables.

    ``header`` is ``None`` at the root, ``"[...]"`` for a sub-table and
    ``"[[...]]"`` for an array-of-tables element.  Sub-tables written after
    an ``[[x]]`` header attach to the latest ``x`` element, which is exactly
    the TOML semantics for nested compositions like a scenario's
    ``injections`` list.
    """
    scalars = []
    tables = []
    table_arrays = []
    for key, value in mapping.items():
        if isinstance(value, Mapping):
            tables.append((key, value))
        elif _is_table_array(value):
            table_arrays.append((key, value))
        else:
            scalars.append((key, value))

    if header is not None:
        lines.append(header)
    for key, value in scalars:
        lines.append(f"{_format_key(key)} = {_format_inline(value)}")
    if header is not None or scalars:
        lines.append("")

    for key, value in tables:
        dotted = ".".join(_format_key(part) for part in path + [key])
        _emit(value, path + [key], lines, f"[{dotted}]")
    for key, items in table_arrays:
        dotted = ".".join(_format_key(part) for part in path + [key])
        for item in items:
            _emit(item, path + [key], lines, f"[[{dotted}]]")


def dumps_toml(mapping: Mapping[str, Any]) -> str:
    """Serialize a nested mapping to a TOML document."""
    lines: List[str] = []
    _emit(mapping, [], lines, None)
    text = "\n".join(lines).strip("\n")
    return text + "\n"
