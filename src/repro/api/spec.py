"""Declarative campaign specifications: the ``CampaignSpec`` schema.

A campaign spec is a single reviewable document — TOML or JSON — that fully
describes an evaluation campaign:

* **experiment** — the :class:`~repro.common.config.ExperimentConfig`
  (simulation fidelity, MSPC settings, execution plan);
* **scenarios** — what to evaluate: references to registered scenarios
  (``use = "idv6"``) and/or inline compositions of anomaly-injection
  primitives (see :mod:`repro.experiments.injections`);
* **sweep** — seed grids and magnitude grids expanding the campaign;
* **analysis** — how results are consumed (eager vs. streaming, chunk size,
  which tables to produce);
* **live** — online co-simulation monitoring (:mod:`repro.live`): score runs
  sample-by-sample while they simulate and optionally stop them a grace
  window after a confirmed detection (:meth:`~repro.api.session.Session.
  run_live` / ``run_campaign.py --live``);
* **service** — distributed execution (:mod:`repro.service`): where the
  campaign coordinator listens, lease/heartbeat timing of the worker
  protocol and the claimable chunk size (``run_campaign.py --serve`` /
  ``--worker`` / ``--submit``);
* **gateway** — the streaming detection gateway (:mod:`repro.gateway`):
  where the multi-tenant stream server listens, its pool capacity, the
  cross-stream scoring batch size and the flush/idle timing
  (``run_gateway.py --serve`` / ``--feed``);
* **response** — closed-loop response (:mod:`repro.response`): declarative
  rules turning confirmed alarms into mid-run recovery actions, plus the
  cooldown/budget/verification knobs
  (:meth:`~repro.api.session.Session.run_response` /
  ``run_campaign.py --respond``);
* **obs** — observability (:mod:`repro.obs`): span tracing, structured
  JSON logs and the shared metrics registry; purely operational and off
  by default (``run_campaign.py --trace PATH``).

Specs are versioned (``version = 1``), validated eagerly with precise error
messages (unknown keys, wrong types and unknown scenario references all
fail at load time, not mid-campaign), and round-trip exactly:
``loads_spec(dumps_spec(spec)) == spec`` with identical campaign cache keys,
which the test suite pins property-style.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field, replace

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.api._toml import dumps_toml
from repro.common.config import (
    ExperimentConfig,
    GatewayConfig,
    LiveConfig,
    ObsConfig,
    ServiceConfig,
    _as_bool,
    _as_int,
    _as_sequence,
)
from repro.common.exceptions import ConfigurationError
from repro.experiments.registry import REGISTRY, ScenarioRegistry
from repro.experiments.scenarios import Scenario
from repro.response.policy import ResponsePolicy

__all__ = [
    "SPEC_VERSION",
    "SweepSpec",
    "AnalysisSpec",
    "CampaignSpec",
    "load_spec",
    "loads_spec",
    "dump_spec",
    "dumps_spec",
]

#: The campaign-spec schema version this build reads and writes.
SPEC_VERSION = 1

_TABLES = ("arl", "classification")
_FORMATS = ("toml", "json")


def _check_keys(mapping: Mapping[str, Any], allowed: Tuple[str, ...], label: str):
    if not isinstance(mapping, Mapping):
        raise ConfigurationError(f"{label} must be a table/mapping, got {mapping!r}")
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        hints = []
        for key in unknown:
            close = difflib.get_close_matches(key, allowed, n=1)
            if close:
                hints.append(f"{key!r} -> did you mean {close[0]!r}?")
        hint = f" ({'; '.join(hints)})" if hints else ""
        raise ConfigurationError(
            f"unknown key(s) {unknown} in {label} "
            f"(allowed: {sorted(allowed)}){hint}"
        )


@dataclass(frozen=True)
class SweepSpec:
    """Grids expanding a campaign into a sweep.

    Attributes
    ----------
    seeds:
        Root seeds to repeat the whole campaign over.  Empty means "just
        the experiment's own seed".
    magnitudes:
        Intensity multipliers applied to every scenario's injections
        (disturbance magnitude, drift rate, bias offset — see
        :meth:`~repro.experiments.injections.Injection.scaled`).  Each
        magnitude produces a renamed scenario variant; empty means "no
        magnitude expansion".
    """

    seeds: Tuple[int, ...] = ()
    magnitudes: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "seeds", tuple(_as_int(seed) for seed in self.seeds)
        )
        object.__setattr__(
            self, "magnitudes", tuple(float(m) for m in self.magnitudes)
        )
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("sweep seeds must be unique")
        if len(set(self.magnitudes)) != len(self.magnitudes):
            raise ConfigurationError("sweep magnitudes must be unique")
        for magnitude in self.magnitudes:
            if magnitude <= 0:
                raise ConfigurationError("sweep magnitudes must be positive")

    @property
    def is_empty(self) -> bool:
        """Whether this sweep expands nothing."""
        return not self.seeds and not self.magnitudes

    def seeds_for(self, base_seed: int) -> Tuple[int, ...]:
        """The root seeds the campaign runs at."""
        return self.seeds or (int(base_seed),)

    def expand(self, scenarios: Tuple[Scenario, ...]) -> Tuple[Scenario, ...]:
        """Apply the magnitude grid to a scenario tuple (scenario-major).

        A scenario whose injections have no intensity knob (DoS, stuck-at,
        replay, constant integrity) would expand into identically-behaving
        variants that each re-simulate; such scenarios are kept once,
        unrenamed, instead.
        """
        if not self.magnitudes:
            return tuple(scenarios)
        expanded = []
        for scenario in scenarios:
            variants = [scenario.scaled(m) for m in self.magnitudes]
            if all(v.injections == scenario.injections for v in variants):
                expanded.append(scenario)
            else:
                expanded.extend(variants)
        return tuple(expanded)

    def to_mapping(self) -> Dict[str, Any]:
        mapping: Dict[str, Any] = {}
        if self.seeds:
            mapping["seeds"] = list(self.seeds)
        if self.magnitudes:
            mapping["magnitudes"] = list(self.magnitudes)
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "SweepSpec":
        _check_keys(mapping, ("seeds", "magnitudes"), "sweep")
        return cls(
            seeds=_as_sequence(mapping.get("seeds", ()), "sweep.seeds"),
            magnitudes=_as_sequence(
                mapping.get("magnitudes", ()), "sweep.magnitudes"
            ),
        )


@dataclass(frozen=True)
class AnalysisSpec:
    """How campaign results are consumed.

    Attributes
    ----------
    streaming:
        ``False`` (default) retains every run eagerly —
        :meth:`Evaluation.evaluate_all` semantics; ``True`` streams through
        the sharded analysis pipeline with O(chunk) peak memory and keeps
        only :class:`~repro.experiments.analysis.ScenarioSummary` records.
    chunk_size:
        Streaming shard size (``None``: 2x the worker count).
    tables:
        Which result tables :meth:`CampaignResult.tables` produces.
    """

    streaming: bool = False
    chunk_size: Optional[int] = None
    tables: Tuple[str, ...] = _TABLES

    def __post_init__(self) -> None:
        object.__setattr__(self, "streaming", _as_bool(self.streaming))
        object.__setattr__(self, "tables", tuple(self.tables))
        if self.chunk_size is not None:
            object.__setattr__(self, "chunk_size", _as_int(self.chunk_size))
            if self.chunk_size < 1:
                raise ConfigurationError("chunk_size must be >= 1 or None")
        for table in self.tables:
            if table not in _TABLES:
                raise ConfigurationError(
                    f"unknown table {table!r} (available: {_TABLES})"
                )

    def to_mapping(self) -> Dict[str, Any]:
        mapping: Dict[str, Any] = {
            "streaming": self.streaming,
            "tables": list(self.tables),
        }
        if self.chunk_size is not None:
            mapping["chunk_size"] = self.chunk_size
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "AnalysisSpec":
        _check_keys(mapping, ("streaming", "chunk_size", "tables"), "analysis")
        return cls(
            streaming=_as_bool(mapping.get("streaming", False)),
            chunk_size=mapping.get("chunk_size"),
            tables=_as_sequence(mapping.get("tables", _TABLES), "analysis.tables"),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A complete, serializable description of an evaluation campaign."""

    name: str
    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)
    scenarios: Tuple[Scenario, ...] = ()
    sweep: SweepSpec = field(default_factory=SweepSpec)
    analysis: AnalysisSpec = field(default_factory=AnalysisSpec)
    live: LiveConfig = field(default_factory=LiveConfig)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    response: ResponsePolicy = field(default_factory=ResponsePolicy)
    obs: ObsConfig = field(default_factory=ObsConfig)
    description: str = ""
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if not str(self.name):
            raise ConfigurationError("a campaign spec needs a non-empty name")
        object.__setattr__(self, "version", _as_int(self.version))
        if self.version != SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported spec version {self.version} "
                f"(this build reads version {SPEC_VERSION})"
            )
        scenarios = tuple(REGISTRY.resolve(ref) for ref in self.scenarios)
        object.__setattr__(self, "scenarios", scenarios)
        if not scenarios:
            raise ConfigurationError("a campaign spec needs at least one scenario")
        names = [scenario.name for scenario in scenarios]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ConfigurationError(f"duplicate scenario name(s): {duplicates}")
        self._check_injection_timing()

    def _check_injection_timing(self) -> None:
        """Fail at load time on windows the campaign onset would invalidate.

        An injection with a deferred onset (``start_hour=None``) activates
        at the experiment's ``anomaly_start_hour``; if its ``end_hour``
        falls at or before that, the attack window is empty and attack
        construction would raise mid-campaign — after calibration already
        ran.  Specs promise to fail at load time, so catch it here.
        """
        onset = self.experiment.anomaly_start_hour
        for scenario in self.scenarios:
            for injection in scenario.injections:
                if (
                    injection.start_hour is None
                    and injection.end_hour is not None
                    and injection.end_hour <= onset
                ):
                    raise ConfigurationError(
                        f"scenario {scenario.name!r}: injection "
                        f"{injection.to_mapping()!r} ends at hour "
                        f"{injection.end_hour:g}, at or before the campaign's "
                        f"anomaly_start_hour ({onset:g}) it would start at"
                    )

    # ------------------------------------------------------------------
    # Campaign expansion
    # ------------------------------------------------------------------
    def expanded_scenarios(self) -> Tuple[Scenario, ...]:
        """The scenarios actually evaluated (magnitude grid applied)."""
        return self.sweep.expand(self.scenarios)

    def seeds(self) -> Tuple[int, ...]:
        """The root seeds the campaign runs at (seed grid applied)."""
        return self.sweep.seeds_for(self.experiment.seed)

    def experiment_for(self, seed: int) -> ExperimentConfig:
        """The experiment configuration of one sweep seed."""
        if seed == self.experiment.seed:
            return self.experiment
        return self.experiment.with_seed(seed)

    def with_experiment(self, experiment: ExperimentConfig) -> "CampaignSpec":
        """This spec with a different experiment configuration."""
        return replace(self, experiment=experiment)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_mapping(self) -> Dict[str, Any]:
        """A plain nested mapping — the canonical serialized form."""
        mapping: Dict[str, Any] = {
            "version": self.version,
            "name": self.name,
        }
        if self.description:
            mapping["description"] = self.description
        mapping["experiment"] = self.experiment.to_mapping()
        mapping["scenarios"] = [
            scenario.to_mapping() for scenario in self.scenarios
        ]
        if not self.sweep.is_empty:
            mapping["sweep"] = self.sweep.to_mapping()
        mapping["analysis"] = self.analysis.to_mapping()
        if not self.live.is_default:
            mapping["live"] = self.live.to_mapping()
        if not self.service.is_default:
            mapping["service"] = self.service.to_mapping()
        if not self.gateway.is_default:
            mapping["gateway"] = self.gateway.to_mapping()
        if not self.response.is_default:
            mapping["response"] = self.response.to_mapping()
        if not self.obs.is_default:
            mapping["obs"] = self.obs.to_mapping()
        return mapping

    @classmethod
    def from_mapping(
        cls,
        mapping: Mapping[str, Any],
        registry: Optional[ScenarioRegistry] = None,
    ) -> "CampaignSpec":
        """Build and validate a spec from its mapping form."""
        _check_keys(
            mapping,
            ("version", "name", "description", "experiment", "scenarios",
             "sweep", "analysis", "live", "service", "gateway", "response",
             "obs"),
            "campaign spec",
        )
        registry = registry or REGISTRY
        if "name" not in mapping:
            raise ConfigurationError("a campaign spec needs a 'name'")
        raw_scenarios = mapping.get("scenarios", ())
        if isinstance(raw_scenarios, (str, Mapping)) or not hasattr(
            raw_scenarios, "__iter__"
        ):
            raise ConfigurationError(
                "'scenarios' must be a list of scenario tables/references"
            )
        return cls(
            name=str(mapping["name"]),
            description=str(mapping.get("description", "")),
            version=mapping.get("version", SPEC_VERSION),
            experiment=ExperimentConfig.from_mapping(mapping.get("experiment", {})),
            scenarios=tuple(registry.resolve(ref) for ref in raw_scenarios),
            sweep=SweepSpec.from_mapping(mapping.get("sweep", {})),
            analysis=AnalysisSpec.from_mapping(mapping.get("analysis", {})),
            live=LiveConfig.from_mapping(mapping.get("live", {})),
            service=ServiceConfig.from_mapping(mapping.get("service", {})),
            gateway=GatewayConfig.from_mapping(mapping.get("gateway", {})),
            response=ResponsePolicy.from_mapping(mapping.get("response", {})),
            obs=ObsConfig.from_mapping(mapping.get("obs", {})),
        )

    def to_toml(self) -> str:
        """This spec as a TOML document."""
        return dumps_toml(self.to_mapping())

    def to_json(self) -> str:
        """This spec as a JSON document."""
        return json.dumps(self.to_mapping(), indent=2) + "\n"


def _format_of(path: Path, format: Optional[str]) -> str:
    if format is not None:
        if format not in _FORMATS:
            raise ConfigurationError(
                f"unknown spec format {format!r} (available: {_FORMATS})"
            )
        return format
    suffix = path.suffix.lower().lstrip(".")
    if suffix in _FORMATS:
        return suffix
    raise ConfigurationError(
        f"cannot infer spec format from {path.name!r}; "
        "use a .toml/.json suffix or pass format=..."
    )


def loads_spec(
    text: str,
    format: str = "toml",
    registry: Optional[ScenarioRegistry] = None,
) -> CampaignSpec:
    """Parse a campaign spec from a TOML or JSON string."""
    if format not in _FORMATS:
        raise ConfigurationError(
            f"unknown spec format {format!r} (available: {_FORMATS})"
        )
    try:
        if format == "toml":
            if tomllib is None:  # pragma: no cover - Python 3.10 w/o tomli
                raise ConfigurationError(
                    "reading TOML specs needs Python 3.11+ (tomllib) or the "
                    "tomli package; JSON specs work everywhere"
                )
            mapping = tomllib.loads(text)
        else:
            mapping = json.loads(text)
    except ValueError as error:  # TOMLDecodeError and JSONDecodeError
        raise ConfigurationError(f"malformed {format} spec: {error}") from error
    return CampaignSpec.from_mapping(mapping, registry=registry)


def load_spec(
    path: Union[str, Path],
    format: Optional[str] = None,
    registry: Optional[ScenarioRegistry] = None,
) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    resolved = _format_of(path, format)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(f"cannot read spec {path}: {error}") from error
    try:
        return loads_spec(text, format=resolved, registry=registry)
    except ConfigurationError as error:
        raise ConfigurationError(f"{path}: {error}") from error


def dumps_spec(spec: CampaignSpec, format: str = "toml") -> str:
    """Serialize a spec to TOML (default) or JSON text."""
    if format not in _FORMATS:
        raise ConfigurationError(
            f"unknown spec format {format!r} (available: {_FORMATS})"
        )
    return spec.to_toml() if format == "toml" else spec.to_json()


def dump_spec(
    spec: CampaignSpec,
    path: Union[str, Path],
    format: Optional[str] = None,
) -> Path:
    """Write a spec to a ``.toml`` or ``.json`` file; returns the path."""
    path = Path(path)
    resolved = _format_of(path, format)
    path.write_text(dumps_spec(spec, format=resolved), encoding="utf-8")
    return path
