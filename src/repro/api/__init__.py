"""``repro.api`` — the declarative campaign facade.

The one import a user of the reproduction needs:

    >>> from repro import api
    >>> spec = api.load_spec("examples/specs/paper.toml")
    >>> result = api.run(spec)
    >>> result.arl_table()

* :func:`load_spec` / :func:`loads_spec` / :func:`dump_spec` /
  :func:`dumps_spec` — read and write :class:`CampaignSpec` documents
  (TOML or JSON);
* :func:`run` / :func:`analyze` — execute a campaign (eager or streaming);
* :func:`run_live` — execute a campaign with live co-simulation monitoring
  and early stopping (the spec's ``[live]`` section, :mod:`repro.live`);
* :func:`run_response` — execute a campaign with the closed-loop response
  stack: policy-matched recovery actions applied mid-run on confirmed
  alarms (the spec's ``[response]`` section, :mod:`repro.response`);
* :func:`submit_spec` / :func:`poll` / :func:`fetch_tables` — hand a
  campaign to a distributed coordinator (the spec's ``[service]`` section,
  :mod:`repro.service`) and collect the same tables ``run`` would produce;
* :func:`serve_gateway` / :class:`StreamClient` — put the spec's
  calibrated monitor behind a streaming detection gateway (the spec's
  ``[gateway]`` section, :mod:`repro.gateway`) and feed/query plant
  streams against it;
* :class:`Session` — a reusable execution context that shares the engine,
  the result cache and per-seed calibrations across calls;
* the schema itself: :class:`CampaignSpec`, :class:`AnalysisSpec`,
  :class:`SweepSpec`, :data:`SPEC_VERSION`.

Scenario composition lives in :mod:`repro.experiments.injections` and the
name registry in :mod:`repro.experiments.registry`; both are re-exported by
:mod:`repro.experiments` for convenience.
"""

from repro.api.session import (
    CampaignResult,
    ResponseCampaignResult,
    Session,
    analyze,
    fetch_tables,
    poll,
    run,
    run_live,
    run_response,
    serve_gateway,
    submit_spec,
)
from repro.api.spec import (
    SPEC_VERSION,
    AnalysisSpec,
    CampaignSpec,
    SweepSpec,
    dump_spec,
    dumps_spec,
    load_spec,
    loads_spec,
)
from repro.common.config import EarlyStopPolicy, GatewayConfig, LiveConfig
from repro.gateway.client import StreamClient
from repro.response.policy import ActionSpec, ResponsePolicy

__all__ = [
    "SPEC_VERSION",
    "CampaignSpec",
    "AnalysisSpec",
    "SweepSpec",
    "LiveConfig",
    "EarlyStopPolicy",
    "GatewayConfig",
    "ResponsePolicy",
    "ActionSpec",
    "load_spec",
    "loads_spec",
    "dump_spec",
    "dumps_spec",
    "run",
    "run_live",
    "run_response",
    "analyze",
    "submit_spec",
    "poll",
    "fetch_tables",
    "serve_gateway",
    "StreamClient",
    "Session",
    "CampaignResult",
    "ResponseCampaignResult",
]
