"""Campaign execution on top of a spec: ``Session`` and ``CampaignResult``.

:class:`Session` is the single place where a :class:`~repro.api.spec.
CampaignSpec` meets the execution machinery — it owns one
:class:`~repro.experiments.parallel.CampaignEngine` (so every sweep seed
shares the worker pool settings and the on-disk result cache) and one
calibrated :class:`~repro.experiments.evaluation.Evaluation` per root seed.
:func:`run` / :func:`analyze` are the one-shot conveniences the CLI and the
examples use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.api.spec import CampaignSpec, load_spec
from repro.common.exceptions import ConfigurationError
from repro.experiments.analysis import (
    ScenarioSummary,
    build_arl_table,
    build_classification_table,
)
from repro.experiments.evaluation import Evaluation
from repro.experiments.parallel import CampaignEngine
from repro.obs.logs import get_logger, log_context
from repro.obs.trace import span as obs_span

__all__ = [
    "CampaignResult",
    "ResponseCampaignResult",
    "Session",
    "run",
    "analyze",
    "submit_spec",
    "poll",
    "fetch_tables",
    "serve_gateway",
]

SpecLike = Union[CampaignSpec, str, Path]

_LOG = get_logger("session")


def _as_spec(spec: SpecLike) -> CampaignSpec:
    if isinstance(spec, CampaignSpec):
        return spec
    return load_spec(spec)


@dataclass
class CampaignResult:
    """What a campaign produced, across every sweep seed.

    ``per_seed`` maps each root seed to its scenario results — eager
    :class:`~repro.experiments.evaluation.ScenarioEvaluation` records or
    streaming :class:`~repro.experiments.analysis.ScenarioSummary` records;
    both expose the shared table API, so every accessor here works with
    either.
    """

    spec: CampaignSpec
    per_seed: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    @property
    def seeds(self) -> List[int]:
        """The sweep seeds, in execution order."""
        return list(self.per_seed)

    @property
    def is_sweep(self) -> bool:
        """Whether the campaign ran at more than one root seed."""
        return len(self.per_seed) > 1

    @property
    def scenario_results(self) -> Dict[str, Any]:
        """Scenario results of a single-seed campaign, keyed by name."""
        if self.is_sweep:
            raise ConfigurationError(
                "this campaign swept several seeds; index per_seed[seed] instead"
            )
        (results,) = self.per_seed.values() or ({},)
        return dict(results)

    # ------------------------------------------------------------------
    def _table(self, builder) -> List[Dict[str, object]]:
        """One table over every seed (a ``seed`` column is added on sweeps)."""
        rows: List[Dict[str, object]] = []
        for seed, results in self.per_seed.items():
            for row in builder(results):
                if self.is_sweep:
                    row = {"seed": seed, **row}
                rows.append(row)
        return rows

    def arl_table(self) -> List[Dict[str, object]]:
        """One row per scenario (and seed): detection rate and ARL in hours."""
        return self._table(build_arl_table)

    def classification_table(self) -> List[Dict[str, object]]:
        """One row per scenario (and seed): how its runs were classified."""
        return self._table(build_classification_table)

    def tables(self) -> Dict[str, List[Dict[str, object]]]:
        """The tables selected by the spec's analysis options, by name."""
        builders = {
            "arl": self.arl_table,
            "classification": self.classification_table,
        }
        return {name: builders[name]() for name in self.spec.analysis.tables}

    # ------------------------------------------------------------------
    def to_mapping(self) -> Dict[str, object]:
        """A JSON-safe mapping of this result.

        Eager :class:`~repro.experiments.evaluation.ScenarioEvaluation`
        records are folded through their streaming summaries first, so the
        wire form always carries
        :class:`~repro.experiments.analysis.ScenarioSummary` mappings —
        per-run scalars and mean vectors, never simulation arrays.  The
        round-trip is table-exact: ``from_mapping(to_mapping()).tables()``
        equals :meth:`tables`.
        """
        per_seed: Dict[str, Dict[str, object]] = {}
        for seed, results in self.per_seed.items():
            per_seed[str(int(seed))] = {
                name: (
                    record if isinstance(record, ScenarioSummary)
                    else record.to_summary()
                ).to_mapping()
                for name, record in results.items()
            }
        return {"spec": self.spec.to_mapping(), "per_seed": per_seed}

    @classmethod
    def from_mapping(cls, mapping: Dict[str, object]) -> "CampaignResult":
        """Rebuild a result from its :meth:`to_mapping` form."""
        per_seed: Dict[int, Dict[str, Any]] = {}
        for seed, results in dict(mapping.get("per_seed", {})).items():
            per_seed[int(seed)] = {
                str(name): ScenarioSummary.from_mapping(record)
                for name, record in dict(results).items()
            }
        return cls(
            spec=CampaignSpec.from_mapping(mapping["spec"]),
            per_seed=per_seed,
        )


@dataclass
class ResponseCampaignResult:
    """What a response-enabled campaign produced, across every sweep seed.

    ``per_seed`` maps each root seed to its
    :class:`~repro.response.campaign.ResponseScenarioResult` records, keyed
    by scenario name.
    """

    spec: CampaignSpec
    per_seed: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    @property
    def seeds(self) -> List[int]:
        """The sweep seeds, in execution order."""
        return list(self.per_seed)

    @property
    def is_sweep(self) -> bool:
        """Whether the campaign ran at more than one root seed."""
        return len(self.per_seed) > 1

    def response_table(self) -> List[Dict[str, object]]:
        """The per-scenario recovery table (a ``seed`` column on sweeps)."""
        from repro.response.metrics import build_response_table

        rows: List[Dict[str, object]] = []
        for seed, results in self.per_seed.items():
            seed_rows = build_response_table(
                [record.to_summary() for record in results.values()]
            )
            for row in seed_rows:
                if self.is_sweep:
                    row = {"seed": seed, **row}
                rows.append(row)
        return rows

    def tables(self) -> Dict[str, List[Dict[str, object]]]:
        """Every table this result produces, by name."""
        return {"response": self.response_table()}

    def to_mapping(self) -> Dict[str, object]:
        """A JSON-safe mapping: the spec plus every per-run report."""
        per_seed: Dict[str, Dict[str, object]] = {}
        for seed, results in self.per_seed.items():
            per_seed[str(int(seed))] = {
                name: record.to_mapping() for name, record in results.items()
            }
        return {"spec": self.spec.to_mapping(), "per_seed": per_seed}


class Session:
    """A reusable execution context for one campaign spec.

    Parameters
    ----------
    spec:
        A :class:`CampaignSpec`, or the path of a TOML/JSON spec file.
    engine:
        Optional pre-built campaign engine; by default one is created from
        the spec's :class:`~repro.common.config.ParallelConfig` and shared
        by every sweep seed, so cache state and pool settings are common to
        the whole session.

    Notes
    -----
    Calibration is the expensive, anomaly-independent part of a campaign;
    the session runs it lazily, once per root seed, and reuses the fitted
    models for every subsequent :meth:`run` / :meth:`analyze` call.
    """

    def __init__(self, spec: SpecLike, engine: Optional[CampaignEngine] = None):
        self.spec = _as_spec(spec)
        self.engine = engine or CampaignEngine(self.spec.experiment.parallel)
        self._evaluations: Dict[int, Evaluation] = {}
        self._campaign_id: Optional[str] = None
        if not self.spec.obs.is_default:
            # A non-default [obs] section owns the process-wide tracer and
            # logging setup; specs without one leave whatever the embedding
            # script configured (e.g. run_campaign.py --trace) untouched.
            from repro.obs import configure as _configure_obs

            _configure_obs(self.spec.obs)

    def fingerprint(self) -> str:
        """The campaign id of this spec (the coordinator's fingerprint)."""
        # Imported lazily: repro.service sits on top of repro.api.
        from repro.service.chunks import campaign_fingerprint

        return campaign_fingerprint(self.spec)

    # ------------------------------------------------------------------
    def evaluation(self, seed: Optional[int] = None) -> Evaluation:
        """The (lazily created) evaluation of one sweep seed."""
        seed = self.spec.experiment.seed if seed is None else int(seed)
        if seed not in self._evaluations:
            self._evaluations[seed] = Evaluation(
                self.spec.experiment_for(seed), engine=self.engine
            )
        return self._evaluations[seed]

    def _calibrated(self, seed: int, keep_results: bool) -> Evaluation:
        evaluation = self.evaluation(seed)
        if not evaluation.is_calibrated:
            with obs_span("session.calibrate", seed=seed):
                evaluation.calibrate(keep_results=keep_results)
            _LOG.info("calibrated", extra={"seed": seed})
        return evaluation

    # ------------------------------------------------------------------
    def run(
        self, streaming: Optional[bool] = None, on_run=None
    ) -> CampaignResult:
        """Execute the campaign: every sweep seed, every expanded scenario.

        ``streaming`` overrides the spec's ``analysis.streaming`` choice;
        with ``False`` (the default spec setting) the per-seed results are
        fully-retained :class:`ScenarioEvaluation` records, bitwise-identical
        to :meth:`Evaluation.evaluate_all` on the same configuration.
        ``on_run`` is called with every analyzed run as it completes
        (progress reporting).
        """
        streaming = (
            self.spec.analysis.streaming if streaming is None else bool(streaming)
        )
        scenarios = self.spec.expanded_scenarios()
        result = CampaignResult(spec=self.spec)
        with log_context(campaign=self.fingerprint()), obs_span(
            "session.run",
            n_seeds=len(self.spec.seeds()),
            n_scenarios=len(scenarios),
            streaming=streaming,
        ):
            for seed in self.spec.seeds():
                evaluation = self._calibrated(seed, keep_results=not streaming)
                with obs_span("session.seed", seed=seed), log_context(seed=seed):
                    if streaming:
                        results = evaluation.evaluate_all_streaming(
                            scenarios,
                            chunk_size=self.spec.analysis.chunk_size,
                            on_run=on_run,
                        )
                    else:
                        results = evaluation.evaluate_all(
                            scenarios, on_run=on_run
                        )
                result.per_seed[seed] = results
            _LOG.info(
                "campaign complete",
                extra={
                    "n_seeds": len(result.per_seed),
                    "n_scenarios": len(scenarios),
                    "streaming": streaming,
                },
            )
        return result

    def run_live(
        self, streaming: Optional[bool] = None, on_run=None
    ) -> CampaignResult:
        """Execute the campaign with live monitoring and early stopping.

        Requires the spec's ``[live]`` section to be enabled.  Anomalous
        runs are scored sample-by-sample while they simulate and — unless
        ``live.early_stop`` is off — terminated a grace window after a
        confirmed detection (see
        :meth:`~repro.experiments.evaluation.Evaluation.evaluate_all_live`).
        Detection verdicts match :meth:`run` exactly; anomalous runs just
        stop simulating once the verdict is in, so the campaign finishes
        measurably faster.
        """
        live = self.spec.live
        if not live.enabled:
            raise ConfigurationError(
                "the spec's [live] section is not enabled; set "
                "live.enabled = true (or use Session.run for batch execution)"
            )
        streaming = (
            self.spec.analysis.streaming if streaming is None else bool(streaming)
        )
        scenarios = self.spec.expanded_scenarios()
        result = CampaignResult(spec=self.spec)
        for seed in self.spec.seeds():
            evaluation = self._calibrated(seed, keep_results=not streaming)
            result.per_seed[seed] = evaluation.evaluate_all_live(
                scenarios,
                policy=live.policy(),
                streaming=streaming,
                chunk_size=self.spec.analysis.chunk_size,
                on_run=on_run,
            )
        return result

    def run_response(self, on_report=None) -> ResponseCampaignResult:
        """Execute the campaign with the closed-loop response stack attached.

        Requires the spec's ``[response]`` section to be enabled.  Every run
        simulates in-process (response actions mutate the trajectory, so the
        campaign cache is bypassed) with a
        :class:`~repro.response.runner.ResponseRunner` riding behind the
        live monitor; per-run seeds match the engine's derivation, so a run
        in which no action fires is bitwise-identical to its :meth:`run`
        counterpart.  ``on_report`` is called with
        ``(scenario_name, run_index, report)`` as each run completes.
        """
        # Imported lazily: repro.response reaches into the live/experiments
        # stack; keep the session importable without it fully loaded.
        from repro.response.campaign import evaluate_all_response

        if not self.spec.response.enabled:
            raise ConfigurationError(
                "the spec's [response] section is not enabled; set "
                "response.enabled = true (or use Session.run for batch "
                "execution)"
            )
        scenarios = self.spec.expanded_scenarios()
        result = ResponseCampaignResult(spec=self.spec)
        for seed in self.spec.seeds():
            evaluation = self._calibrated(seed, keep_results=False)
            result.per_seed[seed] = evaluate_all_response(
                evaluation,
                scenarios,
                self.spec.response,
                on_report=on_report,
            )
        return result

    def analyze(self) -> CampaignResult:
        """Execute the campaign on the streaming path (O(chunk) memory)."""
        return self.run(streaming=True)

    # ------------------------------------------------------------------
    # Distributed execution (repro.service)
    # ------------------------------------------------------------------
    def _client(self, url: Optional[str]):
        # Imported lazily: repro.service sits on top of repro.api, so a
        # module-level import would be circular.
        from repro.service.client import CoordinatorClient

        return CoordinatorClient(url or self.spec.service.url)

    def submit(self, url: Optional[str] = None) -> str:
        """Submit this campaign to a coordinator; returns its campaign id.

        ``url`` defaults to the spec's ``[service]`` section
        (``http://{host}:{port}``).  Submission is idempotent — the id is
        the fingerprint of the coordinator-normalized spec, so re-submitting
        (or submitting from several clients) never duplicates work.
        Raises :class:`~repro.common.exceptions.ServiceUnavailableError`
        when the coordinator cannot be reached.
        """
        campaign_id = self._client(url).submit(self.spec)
        self._campaign_id = campaign_id
        return campaign_id

    def status(self, url: Optional[str] = None) -> Dict[str, Any]:
        """Scheduling progress of this campaign at the coordinator.

        Submits first (idempotently) when this session has not submitted
        yet — the coordinator assigns ids to normalized specs, so the only
        way to learn ours is to ask.
        """
        client = self._client(url)
        campaign_id = self._campaign_id or client.submit(self.spec)
        self._campaign_id = campaign_id
        return client.progress(campaign_id)

    # ------------------------------------------------------------------
    # Streaming gateway (repro.gateway)
    # ------------------------------------------------------------------
    def serve_gateway(self, seed: Optional[int] = None, journal=None):
        """Build a streaming gateway server around this spec's monitor.

        Calibrates the spec's experiment (lazily, shared with :meth:`run`)
        and wraps the fitted analyzer in a
        :class:`~repro.gateway.server.GatewayServer` configured from the
        spec's ``[gateway]`` section.  The server is returned unstarted —
        use it as a context manager, call
        :meth:`~repro.gateway.server.GatewayServer.start` for background
        serving, or :meth:`~repro.gateway.server.GatewayServer.serve_forever`
        to block (the ``run_gateway.py --serve`` mode).

        ``journal`` (a path) makes the pool persist confirmed alarm
        transitions; a restarted gateway over the same journal serves a
        re-opened stream's pre-crash alarm history.  Deliberately a
        parameter, not a spec field: where the journal lives is a
        deployment concern and must not alter the campaign fingerprint.
        """
        # Imported lazily: repro.gateway sits on top of repro.api, so a
        # module-level import would be circular.
        from repro.gateway.pool import MonitorPool
        from repro.gateway.server import GatewayServer

        evaluation = self._calibrated(
            self.spec.experiment.seed if seed is None else int(seed),
            keep_results=False,
        )
        pool = MonitorPool(
            evaluation.analyzer, self.spec.gateway, journal=journal
        )
        return GatewayServer(pool)

    def fetch(self, url: Optional[str] = None) -> Dict[str, List[Dict[str, Any]]]:
        """The reduced tables of this campaign, from the coordinator.

        Raises :class:`~repro.common.exceptions.ServiceError` while the
        campaign is still incomplete (poll :meth:`status` first).  The
        returned tables are bitwise-identical to ``self.run().tables()`` —
        the coordinator's reduction *is* the single-host path, run over the
        shared cache.
        """
        client = self._client(url)
        campaign_id = self._campaign_id or client.submit(self.spec)
        self._campaign_id = campaign_id
        return client.tables(campaign_id)


def run(spec: SpecLike, streaming: Optional[bool] = None) -> CampaignResult:
    """Load (if needed) and execute a campaign spec in one call."""
    return Session(spec).run(streaming=streaming)


def run_live(spec: SpecLike, streaming: Optional[bool] = None) -> CampaignResult:
    """Load (if needed) and execute a campaign spec with live early stopping."""
    return Session(spec).run_live(streaming=streaming)


def run_response(spec: SpecLike, on_report=None) -> ResponseCampaignResult:
    """Load (if needed) and execute a campaign spec with closed-loop response."""
    return Session(spec).run_response(on_report=on_report)


def analyze(spec: SpecLike) -> CampaignResult:
    """Load (if needed) and execute a campaign spec on the streaming path."""
    return Session(spec).analyze()


def submit_spec(spec: SpecLike, url: Optional[str] = None) -> str:
    """Submit a campaign spec to a coordinator; returns the campaign id.

    The distributed counterpart of :func:`run`: the coordinator shards the
    campaign into chunks for its workers, and the tables eventually fetched
    via :func:`fetch_tables` are bitwise-identical to ``run(spec).tables()``.
    ``url`` defaults to the spec's ``[service]`` section.
    """
    return Session(spec).submit(url=url)


def poll(spec: SpecLike, url: Optional[str] = None) -> Dict[str, Any]:
    """Scheduling progress of a spec's campaign at the coordinator.

    Idempotently (re-)submits the spec to resolve its campaign id, so
    polling works from any client, not just the submitting one.
    """
    return Session(spec).status(url=url)


def fetch_tables(
    spec: SpecLike, url: Optional[str] = None
) -> Dict[str, List[Dict[str, Any]]]:
    """The reduced tables of a spec's campaign at the coordinator.

    Raises :class:`~repro.common.exceptions.ServiceError` while the
    campaign is incomplete and
    :class:`~repro.common.exceptions.ServiceUnavailableError` when the
    coordinator is unreachable.
    """
    return Session(spec).fetch(url=url)


def serve_gateway(spec: SpecLike):
    """Calibrate a spec's monitor and build its streaming gateway server.

    The streaming counterpart of :func:`run`: instead of simulating a
    campaign, the spec's calibrated dual-level analyzer is put behind a
    :class:`~repro.gateway.server.GatewayServer` that scores external
    plant streams against it (``[gateway]`` section for host/port,
    capacity and batching).  The server is returned unstarted; every
    stream it serves produces scores and alarm events bitwise-identical
    to an in-process :class:`~repro.live.monitor.LiveMonitor`.
    """
    return Session(spec).serve_gateway()
