"""Reaction kinetics of the Tennessee-Eastman reactor.

The TE reactor hosts four irreversible, exothermic gas-phase reactions:

* R1:  A + C + D -> G        (main product G)
* R2:  A + C + E -> H        (main product H)
* R3:  A + E    -> F         (by-product)
* R4:  3 D      -> 2 F       (by-product)

The grey-box model expresses each rate as the nominal extent multiplied by
normalized reactant availabilities (inventory ratios, which play the role of
partial-pressure ratios in a constant-volume vapour space) and an exponential
temperature factor linearized around the nominal reactor temperature.  The
nominal extents are taken from :data:`repro.te.constants.INTERNAL`, which makes
the base operating point a steady state by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.te.constants import COMPONENTS, INTERNAL

__all__ = ["ReactionRates", "BatchReactionRates", "ReactionKinetics"]

_INDEX = {component: i for i, component in enumerate(COMPONENTS)}


@dataclass(frozen=True)
class ReactionRates:
    """Extents of the four reactions, kmol of product per hour."""

    r1: float
    r2: float
    r3: float
    r4: float

    @property
    def total(self) -> float:
        """Sum of the four extents (a convenient activity measure)."""
        return self.r1 + self.r2 + self.r3 + self.r4

    @property
    def heat_release(self) -> float:
        """Normalized heat release (1.0 at the nominal operating point)."""
        nominal = (
            float(INTERNAL["r1_nominal"])
            + float(INTERNAL["r2_nominal"])
            + 0.5 * float(INTERNAL["r3_nominal"])
            + 0.5 * float(INTERNAL["r4_nominal"])
        )
        value = self.r1 + self.r2 + 0.5 * self.r3 + 0.5 * self.r4
        return value / nominal

    def consumption(self) -> np.ndarray:
        """Net molar production rate per component (negative = consumed), kmol/h."""
        rates = np.zeros(len(COMPONENTS))
        rates[_INDEX["A"]] -= self.r1 + self.r2 + self.r3
        rates[_INDEX["C"]] -= self.r1 + self.r2
        rates[_INDEX["D"]] -= self.r1 + 3.0 * self.r4
        rates[_INDEX["E"]] -= self.r2 + self.r3
        rates[_INDEX["F"]] += self.r3 + 2.0 * self.r4
        rates[_INDEX["G"]] += self.r1
        rates[_INDEX["H"]] += self.r2
        return rates


@dataclass(frozen=True)
class BatchReactionRates:
    """Extents of the four reactions for ``B`` reactors, each ``(B,)``."""

    r1: np.ndarray
    r2: np.ndarray
    r3: np.ndarray
    r4: np.ndarray

    @property
    def heat_release(self) -> np.ndarray:
        """Row-wise normalized heat release (mirrors :class:`ReactionRates`)."""
        nominal = (
            float(INTERNAL["r1_nominal"])
            + float(INTERNAL["r2_nominal"])
            + 0.5 * float(INTERNAL["r3_nominal"])
            + 0.5 * float(INTERNAL["r4_nominal"])
        )
        value = self.r1 + self.r2 + 0.5 * self.r3 + 0.5 * self.r4
        return value / nominal

    def consumption(self) -> np.ndarray:
        """Net molar production per component, ``(B, 8)`` (negative = consumed)."""
        rates = np.zeros((self.r1.shape[0], len(COMPONENTS)))
        rates[:, _INDEX["A"]] -= self.r1 + self.r2 + self.r3
        rates[:, _INDEX["C"]] -= self.r1 + self.r2
        rates[:, _INDEX["D"]] -= self.r1 + 3.0 * self.r4
        rates[:, _INDEX["E"]] -= self.r2 + self.r3
        rates[:, _INDEX["F"]] += self.r3 + 2.0 * self.r4
        rates[:, _INDEX["G"]] += self.r1
        rates[:, _INDEX["H"]] += self.r2
        return rates


class ReactionKinetics:
    """Computes reaction extents from reactor inventories and temperature.

    Parameters
    ----------
    drift_gain:
        Multiplier applied to the slow-kinetics-drift state (IDV(13)); the
        effective rate constants are scaled by ``1 + drift_gain * drift``.
    """

    def __init__(self, drift_gain: float = 0.3):
        self.drift_gain = float(drift_gain)
        self._nominal_vapor = np.zeros(len(COMPONENTS))
        for component, amount in INTERNAL["reactor_vapor_nominal"].items():
            self._nominal_vapor[_INDEX[component]] = float(amount)
        self._nominal_liquid = np.zeros(len(COMPONENTS))
        for component, amount in INTERNAL["reactor_liquid_nominal"].items():
            self._nominal_liquid[_INDEX[component]] = float(amount)
        self._nominal_temp = float(INTERNAL["reactor_temp_nominal"])

    def _availability(self, vapor: np.ndarray, liquid: np.ndarray, component: str) -> float:
        """Normalized availability of a reactant (1.0 at nominal inventory)."""
        index = _INDEX[component]
        if self._nominal_vapor[index] > 0:
            return max(float(vapor[index]) / self._nominal_vapor[index], 0.0)
        if self._nominal_liquid[index] > 0:
            return max(float(liquid[index]) / self._nominal_liquid[index], 0.0)
        return 0.0

    def rates(
        self,
        reactor_vapor: np.ndarray,
        reactor_liquid: np.ndarray,
        reactor_temp: float,
        kinetics_drift: float = 0.0,
    ) -> ReactionRates:
        """Reaction extents for the given reactor state."""
        a = self._availability(reactor_vapor, reactor_liquid, "A")
        c = self._availability(reactor_vapor, reactor_liquid, "C")
        d = self._availability(reactor_vapor, reactor_liquid, "D")
        e = self._availability(reactor_vapor, reactor_liquid, "E")

        delta_t = float(reactor_temp) - self._nominal_temp
        drift = 1.0 + self.drift_gain * float(kinetics_drift)

        factor1 = np.exp(float(INTERNAL["r1_temp_gain"]) * delta_t)
        factor2 = np.exp(float(INTERNAL["r2_temp_gain"]) * delta_t)
        factor3 = np.exp(float(INTERNAL["r3_temp_gain"]) * delta_t)
        factor4 = np.exp(float(INTERNAL["r4_temp_gain"]) * delta_t)

        r1 = float(INTERNAL["r1_nominal"]) * a * np.sqrt(max(c, 0.0)) * d * factor1 * drift
        r2 = float(INTERNAL["r2_nominal"]) * a * np.sqrt(max(c, 0.0)) * e * factor2 * drift
        r3 = float(INTERNAL["r3_nominal"]) * a * e * factor3 * drift
        r4 = float(INTERNAL["r4_nominal"]) * d * factor4 * drift
        return ReactionRates(r1=max(r1, 0.0), r2=max(r2, 0.0), r3=max(r3, 0.0), r4=max(r4, 0.0))

    # ------------------------------------------------------------------
    # Batched evaluation (one call advances B reactors)
    # ------------------------------------------------------------------
    def _availability_batch(
        self, vapor: np.ndarray, liquid: np.ndarray, component: str
    ) -> np.ndarray:
        """Row-wise availability, ``(B,)`` — mirrors :meth:`_availability`."""
        index = _INDEX[component]
        if self._nominal_vapor[index] > 0:
            return np.maximum(vapor[:, index] / self._nominal_vapor[index], 0.0)
        if self._nominal_liquid[index] > 0:
            return np.maximum(liquid[:, index] / self._nominal_liquid[index], 0.0)
        return np.zeros(vapor.shape[0])

    def rates_batch(
        self,
        reactor_vapor: np.ndarray,
        reactor_liquid: np.ndarray,
        reactor_temp: np.ndarray,
        kinetics_drift: np.ndarray,
    ) -> "BatchReactionRates":
        """Reaction extents for ``B`` reactor states at once.

        Inputs are ``(B, 8)`` inventories and ``(B,)`` temperatures/drifts;
        every arithmetic step applies the same ufunc, in the same order, as
        the scalar :meth:`rates` path, so row ``i`` of the result is
        bitwise-identical to ``rates(vapor[i], liquid[i], temp[i], drift[i])``.
        """
        a = self._availability_batch(reactor_vapor, reactor_liquid, "A")
        c = self._availability_batch(reactor_vapor, reactor_liquid, "C")
        d = self._availability_batch(reactor_vapor, reactor_liquid, "D")
        e = self._availability_batch(reactor_vapor, reactor_liquid, "E")

        delta_t = reactor_temp - self._nominal_temp
        drift = 1.0 + self.drift_gain * kinetics_drift

        factor1 = np.exp(float(INTERNAL["r1_temp_gain"]) * delta_t)
        factor2 = np.exp(float(INTERNAL["r2_temp_gain"]) * delta_t)
        factor3 = np.exp(float(INTERNAL["r3_temp_gain"]) * delta_t)
        factor4 = np.exp(float(INTERNAL["r4_temp_gain"]) * delta_t)

        sqrt_c = np.sqrt(np.maximum(c, 0.0))
        r1 = float(INTERNAL["r1_nominal"]) * a * sqrt_c * d * factor1 * drift
        r2 = float(INTERNAL["r2_nominal"]) * a * sqrt_c * e * factor2 * drift
        r3 = float(INTERNAL["r3_nominal"]) * a * e * factor3 * drift
        r4 = float(INTERNAL["r4_nominal"]) * d * factor4 * drift
        return BatchReactionRates(
            r1=np.maximum(r1, 0.0),
            r2=np.maximum(r2, 0.0),
            r3=np.maximum(r3, 0.0),
            r4=np.maximum(r4, 0.0),
        )
