"""Variable registries for the Tennessee-Eastman interface."""

from __future__ import annotations

from repro.process.variables import VariableRegistry, VariableSpec
from repro.te.constants import (
    N_XMEAS,
    N_XMV,
    XMEAS_TABLE,
    XMV_TABLE,
    xmeas_name,
    xmv_name,
)

__all__ = ["build_xmeas_registry", "build_xmv_registry"]


def build_xmeas_registry() -> VariableRegistry:
    """Registry of the 41 measured variables with nominal values and noise."""
    registry = VariableRegistry()
    for index in range(1, N_XMEAS + 1):
        description, unit, nominal, noise_std = XMEAS_TABLE[index - 1]
        if unit == "%":
            minimum, maximum = 0.0, 150.0
        elif unit == "mol %":
            minimum, maximum = 0.0, 100.0
        else:
            minimum, maximum = 0.0, float("inf")
        registry.add(
            VariableSpec(
                name=xmeas_name(index),
                description=description,
                unit=unit,
                nominal=float(nominal),
                noise_std=float(noise_std),
                minimum=minimum,
                maximum=maximum,
            )
        )
    return registry


def build_xmv_registry() -> VariableRegistry:
    """Registry of the 12 manipulated variables (valve positions, in %)."""
    registry = VariableRegistry()
    for index in range(1, N_XMV + 1):
        description, nominal = XMV_TABLE[index - 1]
        registry.add(
            VariableSpec(
                name=xmv_name(index),
                description=description,
                unit="%",
                nominal=float(nominal),
                noise_std=0.0,
                minimum=0.0,
                maximum=100.0,
            )
        )
    return registry
