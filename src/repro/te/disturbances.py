"""The 20 Tennessee-Eastman process disturbances, IDV(1)-IDV(20).

This module only holds the *specifications* (what each disturbance means);
their physical effect on the plant is implemented inside
:class:`repro.te.plant.TEPlant`, which interprets the active-disturbance
mapping it receives at every integration step.
"""

from __future__ import annotations

from typing import Tuple

from repro.process.disturbances import DisturbanceSpec
from repro.te.constants import IDV_TABLE, N_IDV, idv_name

__all__ = ["IDV_SPECS", "describe_idv"]


def _build_specs() -> Tuple[DisturbanceSpec, ...]:
    specs = []
    for index in range(1, N_IDV + 1):
        description, kind = IDV_TABLE[index - 1]
        specs.append(
            DisturbanceSpec(
                index=index,
                name=idv_name(index),
                description=description,
                kind=kind,
            )
        )
    return tuple(specs)


#: Specifications of all 20 disturbances, indexed 0..19 for IDV(1)..IDV(20).
IDV_SPECS: Tuple[DisturbanceSpec, ...] = _build_specs()


def describe_idv(index: int) -> DisturbanceSpec:
    """Return the specification of disturbance ``IDV(index)`` (1-based)."""
    if not 1 <= index <= N_IDV:
        raise ValueError(f"IDV index must be in [1, {N_IDV}], got {index}")
    return IDV_SPECS[index - 1]
