"""The Tennessee-Eastman (TE) challenge process substrate.

The paper evaluates its MSPC-based detector on the Tennessee-Eastman process
(Downs & Vogel, 1993) under Ricker's decentralized control with the added
randomness model of Krotofil et al.  The authors use the DVCP-TE
Simulink/Fortran model; this package provides a from-scratch Python
reimplementation exposing the same interface:

* 41 measured variables, ``XMEAS(1)`` ... ``XMEAS(41)``;
* 12 manipulated variables, ``XMV(1)`` ... ``XMV(12)``;
* 20 process disturbances, ``IDV(1)`` ... ``IDV(20)``.

The plant dynamics are a reduced-order grey-box model (see ``DESIGN.md`` for
the substitution rationale): the reactor / separator / stripper inventory
structure, reaction stoichiometry, recycle loop, level/pressure/temperature
dynamics and safety interlocks are modelled explicitly, and the outputs are
calibrated so that the base operating point matches the published Downs &
Vogel steady state.
"""

from repro.te.constants import (
    COMPONENTS,
    N_XMEAS,
    N_XMV,
    N_IDV,
    XMEAS_NAMES,
    XMV_NAMES,
    IDV_NAMES,
    xmeas_name,
    xmv_name,
    idv_name,
)
from repro.te.variables import build_xmeas_registry, build_xmv_registry
from repro.te.state import TEState
from repro.te.kinetics import ReactionKinetics
from repro.te.plant import TEPlant
from repro.te.safety import default_safety_monitor, DEFAULT_SAFETY_LIMITS
from repro.te.disturbances import IDV_SPECS, describe_idv

__all__ = [
    "COMPONENTS",
    "N_XMEAS",
    "N_XMV",
    "N_IDV",
    "XMEAS_NAMES",
    "XMV_NAMES",
    "IDV_NAMES",
    "xmeas_name",
    "xmv_name",
    "idv_name",
    "build_xmeas_registry",
    "build_xmv_registry",
    "TEState",
    "ReactionKinetics",
    "TEPlant",
    "default_safety_monitor",
    "DEFAULT_SAFETY_LIMITS",
    "IDV_SPECS",
    "describe_idv",
]
