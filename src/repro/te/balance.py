"""Construction-time steady-state calibration of the grey-box TE model.

The dynamic model in :mod:`repro.te.plant` is calibrated *by construction*:
before the first step, the nominal stream table of the plant is derived so
that the published base case (nominal valve positions, nominal inventories,
nominal recycle and purge rates) is — up to residuals of a few kmol/h that the
regulatory control layer absorbs — a steady state of the dynamics.

The calibration fixes the quantities that are physically set by equipment
(recycle and purge totals, feed rates, nominal reaction extents, stripping
efficiencies) and *derives* the remaining degrees of freedom (per-component
condensation fractions in the partial condenser, the separator/stripper liquid
compositions and the per-vessel outflow coefficients) so that every inventory
derivative is (approximately) zero at the nominal point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.te.constants import COMPONENTS, INTERNAL
from repro.te.kinetics import ReactionRates

__all__ = [
    "NominalBalance",
    "solve_nominal_balance",
    "component_vector",
    "stripping_fractions",
    "nominal_reaction_rates",
]

_INDEX = {component: i for i, component in enumerate(COMPONENTS)}


def component_vector(values: Dict[str, float]) -> np.ndarray:
    """Expand ``{component: value}`` into an 8-vector ordered A..H."""
    vector = np.zeros(len(COMPONENTS))
    for component, amount in values.items():
        vector[_INDEX[component]] = float(amount)
    return vector


def stripping_fractions() -> np.ndarray:
    """Nominal fraction of each stripper-feed component returned as overhead vapour."""
    fractions = {
        "A": 0.99,
        "B": 0.99,
        "C": 0.99,
        "D": 0.88,
        "E": 0.88,
        "F": 0.80,
        "G": 0.03,
        "H": 0.01,
    }
    return component_vector(fractions)


def nominal_reaction_rates() -> ReactionRates:
    """The nominal reaction extents from the constants table."""
    return ReactionRates(
        r1=float(INTERNAL["r1_nominal"]),
        r2=float(INTERNAL["r2_nominal"]),
        r3=float(INTERNAL["r3_nominal"]),
        r4=float(INTERNAL["r4_nominal"]),
    )


@dataclass(frozen=True)
class NominalBalance:
    """Self-consistent nominal stream table (vectors in kmol/h, A..H order).

    Attributes
    ----------
    feed1 .. feed4:
        Component flows of the four fresh feeds.
    recycle:
        Compressor recycle stream (stream 8).
    stripper_overhead:
        Vapour stripped from the stripper feed back to the reaction loop.
    reactor_in:
        Total reactor feed (stream 6).
    effluent:
        Reactor effluent (stream 7).
    separator_vapor_in / separator_liquid_in:
        Split of the effluent in the partial condenser + separator.
    purge:
        Purge stream (stream 9).
    product:
        Liquid product stream (stream 11).
    condensation:
        Per-component condensation fractions consistent with the above.
    """

    feed1: np.ndarray
    feed2: np.ndarray
    feed3: np.ndarray
    feed4: np.ndarray
    recycle: np.ndarray
    stripper_overhead: np.ndarray
    reactor_in: np.ndarray
    effluent: np.ndarray
    separator_vapor_in: np.ndarray
    separator_liquid_in: np.ndarray
    purge: np.ndarray
    product: np.ndarray
    condensation: np.ndarray

    @property
    def reactor_feed_total(self) -> float:
        """Total molar reactor feed (stream 6)."""
        return float(self.reactor_in.sum())

    @property
    def recycle_total(self) -> float:
        """Total molar recycle flow (stream 8)."""
        return float(self.recycle.sum())

    @property
    def purge_total(self) -> float:
        """Total molar purge flow (stream 9)."""
        return float(self.purge.sum())

    @property
    def separator_underflow_total(self) -> float:
        """Total molar separator underflow (stream 10)."""
        return float(self.separator_liquid_in.sum())

    @property
    def product_total(self) -> float:
        """Total molar product flow (stream 11)."""
        return float(self.product.sum())


def solve_nominal_balance(iterations: int = 200) -> NominalBalance:
    """Derive the nominal stream table of the grey-box model.

    The recycle and purge totals and the separator-vapour composition are
    pinned to their nominal values; the per-component condensation fractions
    and the stripper overhead are iterated (a strongly contracting loop) so
    that the reactor, separator and stripper inventory balances close at the
    nominal operating point.
    """
    feed1 = float(INTERNAL["feed1_nominal"]) * component_vector(
        INTERNAL["feed1_composition"]
    )
    feed2 = component_vector({"D": float(INTERNAL["feed2_nominal"])})
    feed3 = component_vector({"E": float(INTERNAL["feed3_nominal"])})
    feed4 = float(INTERNAL["feed4_nominal"]) * component_vector(
        INTERNAL["feed4_composition"]
    )
    feeds = feed1 + feed2 + feed3 + feed4

    production = nominal_reaction_rates().consumption()
    strip = stripping_fractions()

    vapor_nominal = component_vector(INTERNAL["separator_vapor_nominal"])
    vapor_fraction = vapor_nominal / vapor_nominal.sum()
    recycle_total = float(INTERNAL["recycle_nominal"])
    purge_total = float(INTERNAL["purge_nominal"])
    recycle = recycle_total * vapor_fraction
    purge = purge_total * vapor_fraction
    vapor_out_required = (recycle_total + purge_total) * vapor_fraction

    overhead = np.zeros(len(COMPONENTS))
    condensation = np.full(len(COMPONENTS), 0.5)
    for _ in range(iterations):
        reactor_in = feeds + recycle + overhead
        effluent = np.clip(reactor_in + production, 1e-6, None)
        condensation = np.clip(1.0 - vapor_out_required / effluent, 0.01, 0.99)
        separator_liquid_in = effluent * condensation
        overhead = strip * separator_liquid_in

    reactor_in = feeds + recycle + overhead
    effluent = np.clip(reactor_in + production, 1e-6, None)
    separator_liquid_in = effluent * condensation
    separator_vapor_in = effluent - separator_liquid_in
    product = separator_liquid_in - strip * separator_liquid_in

    return NominalBalance(
        feed1=feed1,
        feed2=feed2,
        feed3=feed3,
        feed4=feed4,
        recycle=recycle,
        stripper_overhead=strip * separator_liquid_in,
        reactor_in=reactor_in,
        effluent=effluent,
        separator_vapor_in=separator_vapor_in,
        separator_liquid_in=separator_liquid_in,
        purge=purge,
        product=product,
        condensation=condensation,
    )
