"""Safety interlocks of the Tennessee-Eastman plant.

Downs & Vogel specify hard shutdown constraints on the reactor pressure and
the vessel liquid levels.  The limits below follow those constraints (adapted
to the percentage level convention of the grey-box model) and reproduce the
behaviour exploited in the paper's evaluation: under IDV(6) or an attack that
closes the A feed valve, the stripper liquid level eventually falls below its
low limit and the plant shuts itself down a few hours after the anomaly
begins.
"""

from __future__ import annotations

from typing import Tuple

from repro.process.safety import SafetyLimit, SafetyMonitor

__all__ = ["DEFAULT_SAFETY_LIMITS", "default_safety_monitor"]


#: Shutdown constraints evaluated by :func:`default_safety_monitor`.
DEFAULT_SAFETY_LIMITS: Tuple[SafetyLimit, ...] = (
    SafetyLimit(
        quantity="reactor_pressure",
        high=3000.0,
        description="reactor pressure exceeded the 3000 kPa safety limit",
        grace_hours=0.05,
    ),
    SafetyLimit(
        quantity="reactor_level",
        low=4.0,
        high=135.0,
        description="reactor liquid level outside safe operating range",
        grace_hours=0.02,
    ),
    SafetyLimit(
        quantity="separator_level",
        low=2.0,
        high=135.0,
        description="separator liquid level outside safe operating range",
        grace_hours=0.02,
    ),
    SafetyLimit(
        quantity="stripper_level",
        low=4.0,
        high=135.0,
        description="stripper liquid level became too low for safe operation",
        grace_hours=0.02,
    ),
)


def default_safety_monitor(enabled: bool = True) -> SafetyMonitor:
    """A :class:`SafetyMonitor` configured with the TE shutdown constraints."""
    return SafetyMonitor(DEFAULT_SAFETY_LIMITS, enabled=enabled)
