"""Constants of the Tennessee-Eastman process model.

The measured-variable (XMEAS) and manipulated-variable (XMV) tables follow the
naming, units and base-case steady-state values published by Downs & Vogel
(1993).  The ``INTERNAL`` section holds the parameters of the reduced-order
grey-box dynamic model; the output map in :mod:`repro.te.plant` converts the
internal quantities to the published engineering units, so the base operating
point of the simulator coincides with the published one.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "COMPONENTS",
    "MOLECULAR_WEIGHTS",
    "N_XMEAS",
    "N_XMV",
    "N_IDV",
    "XMEAS_TABLE",
    "XMV_TABLE",
    "IDV_TABLE",
    "XMEAS_NAMES",
    "XMV_NAMES",
    "IDV_NAMES",
    "xmeas_name",
    "xmv_name",
    "idv_name",
    "INTERNAL",
]

# ----------------------------------------------------------------------
# Components
# ----------------------------------------------------------------------
#: The eight chemical species of the TE process.  A, B and C are
#: non-condensible gases; D, E, F are intermediate liquids; G and H are the
#: saleable products.
COMPONENTS: Tuple[str, ...] = ("A", "B", "C", "D", "E", "F", "G", "H")

#: Molecular weights (kg/kmol) from Downs & Vogel.
MOLECULAR_WEIGHTS: Dict[str, float] = {
    "A": 2.0,
    "B": 25.4,
    "C": 28.0,
    "D": 32.0,
    "E": 46.0,
    "F": 48.0,
    "G": 62.0,
    "H": 76.0,
}

N_XMEAS = 41
N_XMV = 12
N_IDV = 20


def xmeas_name(index: int) -> str:
    """Canonical name of measured variable ``index`` (1-based)."""
    if not 1 <= index <= N_XMEAS:
        raise ValueError(f"XMEAS index must be in [1, {N_XMEAS}], got {index}")
    return f"XMEAS({index})"


def xmv_name(index: int) -> str:
    """Canonical name of manipulated variable ``index`` (1-based)."""
    if not 1 <= index <= N_XMV:
        raise ValueError(f"XMV index must be in [1, {N_XMV}], got {index}")
    return f"XMV({index})"


def idv_name(index: int) -> str:
    """Canonical name of disturbance ``index`` (1-based)."""
    if not 1 <= index <= N_IDV:
        raise ValueError(f"IDV index must be in [1, {N_IDV}], got {index}")
    return f"IDV({index})"


# ----------------------------------------------------------------------
# Measured variables: (description, unit, nominal value, measurement noise std)
# ----------------------------------------------------------------------
XMEAS_TABLE: List[Tuple[str, str, float, float]] = [
    ("A feed (stream 1)", "kscmh", 0.25052, 0.0025),
    ("D feed (stream 2)", "kg/h", 3664.0, 18.0),
    ("E feed (stream 3)", "kg/h", 4509.3, 22.0),
    ("A and C feed (stream 4)", "kscmh", 9.3477, 0.05),
    ("Recycle flow (stream 8)", "kscmh", 26.902, 0.14),
    ("Reactor feed rate (stream 6)", "kscmh", 42.339, 0.21),
    ("Reactor pressure", "kPa gauge", 2705.0, 3.0),
    ("Reactor level", "%", 75.0, 0.4),
    ("Reactor temperature", "deg C", 120.40, 0.08),
    ("Purge rate (stream 9)", "kscmh", 0.33712, 0.004),
    ("Product separator temperature", "deg C", 80.109, 0.10),
    ("Product separator level", "%", 50.0, 0.4),
    ("Product separator pressure", "kPa gauge", 2633.7, 3.0),
    ("Product separator underflow (stream 10)", "m3/h", 25.160, 0.20),
    ("Stripper level", "%", 50.0, 0.4),
    ("Stripper pressure", "kPa gauge", 3102.2, 3.5),
    ("Stripper underflow (stream 11)", "m3/h", 22.949, 0.18),
    ("Stripper temperature", "deg C", 65.731, 0.10),
    ("Stripper steam flow", "kg/h", 230.31, 2.0),
    ("Compressor work", "kW", 341.43, 2.2),
    ("Reactor cooling water outlet temperature", "deg C", 94.599, 0.10),
    ("Separator cooling water outlet temperature", "deg C", 77.297, 0.10),
    ("Reactor feed composition A (stream 6)", "mol %", 32.188, 0.12),
    ("Reactor feed composition B (stream 6)", "mol %", 8.8933, 0.08),
    ("Reactor feed composition C (stream 6)", "mol %", 26.383, 0.11),
    ("Reactor feed composition D (stream 6)", "mol %", 6.8820, 0.06),
    ("Reactor feed composition E (stream 6)", "mol %", 18.776, 0.09),
    ("Reactor feed composition F (stream 6)", "mol %", 1.6567, 0.03),
    ("Purge gas composition A (stream 9)", "mol %", 32.958, 0.14),
    ("Purge gas composition B (stream 9)", "mol %", 13.823, 0.10),
    ("Purge gas composition C (stream 9)", "mol %", 23.978, 0.12),
    ("Purge gas composition D (stream 9)", "mol %", 1.2565, 0.03),
    ("Purge gas composition E (stream 9)", "mol %", 18.579, 0.10),
    ("Purge gas composition F (stream 9)", "mol %", 2.2633, 0.04),
    ("Purge gas composition G (stream 9)", "mol %", 4.8436, 0.05),
    ("Purge gas composition H (stream 9)", "mol %", 2.2986, 0.04),
    ("Product composition D (stream 11)", "mol %", 0.01787, 0.005),
    ("Product composition E (stream 11)", "mol %", 0.83570, 0.02),
    ("Product composition F (stream 11)", "mol %", 0.09858, 0.008),
    ("Product composition G (stream 11)", "mol %", 53.724, 0.18),
    ("Product composition H (stream 11)", "mol %", 43.828, 0.16),
]

# ----------------------------------------------------------------------
# Manipulated variables: (description, nominal position in %)
# ----------------------------------------------------------------------
XMV_TABLE: List[Tuple[str, float]] = [
    ("D feed flow valve (stream 2)", 63.053),
    ("E feed flow valve (stream 3)", 53.980),
    ("A feed flow valve (stream 1)", 24.644),
    ("A and C feed flow valve (stream 4)", 61.302),
    ("Compressor recycle valve", 22.210),
    ("Purge valve (stream 9)", 40.064),
    ("Separator pot liquid flow valve (stream 10)", 38.100),
    ("Stripper liquid product flow valve (stream 11)", 46.534),
    ("Stripper steam valve", 47.446),
    ("Reactor cooling water flow valve", 41.106),
    ("Condenser cooling water flow valve", 18.114),
    ("Agitator speed", 50.000),
]

# ----------------------------------------------------------------------
# Process disturbances: (description, kind)
# ----------------------------------------------------------------------
IDV_TABLE: List[Tuple[str, str]] = [
    ("A/C feed ratio, B composition constant (stream 4)", "step"),
    ("B composition, A/C ratio constant (stream 4)", "step"),
    ("D feed temperature (stream 2)", "step"),
    ("Reactor cooling water inlet temperature", "step"),
    ("Condenser cooling water inlet temperature", "step"),
    ("A feed loss (stream 1)", "step"),
    ("C header pressure loss - reduced availability (stream 4)", "step"),
    ("A, B, C feed composition (stream 4)", "random"),
    ("D feed temperature (stream 2)", "random"),
    ("C feed temperature (stream 4)", "random"),
    ("Reactor cooling water inlet temperature", "random"),
    ("Condenser cooling water inlet temperature", "random"),
    ("Reaction kinetics", "drift"),
    ("Reactor cooling water valve", "sticking"),
    ("Condenser cooling water valve", "sticking"),
    ("Unknown (16)", "unknown"),
    ("Unknown (17)", "unknown"),
    ("Unknown (18)", "unknown"),
    ("Unknown (19)", "unknown"),
    ("Unknown (20)", "unknown"),
]

XMEAS_NAMES: Tuple[str, ...] = tuple(xmeas_name(i) for i in range(1, N_XMEAS + 1))
XMV_NAMES: Tuple[str, ...] = tuple(xmv_name(i) for i in range(1, N_XMV + 1))
IDV_NAMES: Tuple[str, ...] = tuple(idv_name(i) for i in range(1, N_IDV + 1))


# ----------------------------------------------------------------------
# Internal grey-box model parameters
# ----------------------------------------------------------------------
#: Parameters of the reduced-order dynamic model.  Molar quantities are in
#: kmol and kmol/h; temperatures in deg C.  The feed split deliberately gives
#: stream 1 a substantial share of the total A supply so that the qualitative
#: severity of IDV(6) (loss of the A feed) matches the behaviour reported for
#: the full TE model: the plant can no longer sustain production and trips on
#: low stripper level a few hours after the disturbance begins.
INTERNAL: Dict[str, object] = {
    # Nominal molar feed rates (kmol/h) at the base-case valve positions.
    "feed1_nominal": 88.0,        # stream 1, essentially pure A
    "feed2_nominal": 116.5,       # stream 2, pure D
    "feed3_nominal": 99.0,        # stream 3, pure E
    "feed4_nominal": 337.0,       # stream 4, A + C (plus a little B)
    "recycle_nominal": 1204.0,    # stream 8
    "purge_nominal": 15.1,        # stream 9
    "product_nominal": 210.0,     # stream 11 (liquid product, molar)
    "separator_underflow_nominal": 214.0,   # stream 10 (liquid to stripper)
    "steam_nominal": 230.31,      # stripper steam, kg/h

    # Stream compositions (mole fractions).
    "feed1_composition": {"A": 0.999, "B": 0.001},
    "feed4_composition": {"A": 0.3690, "B": 0.0062, "C": 0.6248},

    # Nominal reaction extents (kmol/h of product formed).
    "r1_nominal": 112.0,   # A + C + D -> G
    "r2_nominal": 95.0,    # A + C + E -> H
    "r3_nominal": 0.3,     # A + E -> F
    "r4_nominal": 0.1,     # 3 D -> 2 F

    # Activation-energy-like temperature sensitivities (1/K equivalents used
    # as linear gains around the nominal reactor temperature).
    "r1_temp_gain": 0.035,
    "r2_temp_gain": 0.030,
    "r3_temp_gain": 0.045,
    "r4_temp_gain": 0.040,

    # Nominal vessel inventories (kmol).
    "reactor_vapor_nominal": {"A": 38.0, "B": 11.0, "C": 30.0},
    "reactor_liquid_nominal": {"D": 18.0, "E": 48.0, "F": 6.0, "G": 70.0, "H": 58.0},
    "separator_vapor_nominal": {"A": 26.0, "B": 11.0, "C": 19.0, "D": 1.0,
                                "E": 15.0, "F": 1.8, "G": 3.8, "H": 1.8},
    "separator_liquid_nominal": {"D": 1.5, "E": 14.0, "F": 1.6, "G": 78.0, "H": 62.0},
    "stripper_liquid_nominal": {"D": 0.04, "E": 1.8, "F": 0.2, "G": 112.0, "H": 92.0},

    # Vessel capacities (kmol of liquid at 100 % level).
    "reactor_liquid_capacity": 266.7,     # nominal level 75 %
    "separator_liquid_capacity": 314.0,   # nominal level 50 %
    "stripper_liquid_capacity": 412.0,    # nominal level 50 %

    # Nominal temperatures (deg C).
    "reactor_temp_nominal": 120.40,
    "separator_temp_nominal": 80.109,
    "stripper_temp_nominal": 65.731,
    "reactor_cw_outlet_nominal": 94.599,
    "separator_cw_outlet_nominal": 77.297,
    "reactor_cw_inlet_nominal": 35.0,
    "condenser_cw_inlet_nominal": 40.0,

    # Nominal pressures (kPa gauge).
    "reactor_pressure_nominal": 2705.0,
    "separator_pressure_nominal": 2633.7,
    "stripper_pressure_nominal": 3102.2,

    # First-order time constants (hours).
    "reactor_temp_tau": 0.35,
    "separator_temp_tau": 0.40,
    "stripper_temp_tau": 0.45,
    "cw_outlet_tau": 0.12,
    "recycle_tau": 0.08,
    "composition_tau": 0.15,

    # Heat-balance gains (deg C per unit of normalized imbalance).
    "reactor_heat_gain": 18.0,
    "reactor_cooling_gain": 22.0,

    # Fraction of condensible components (D-H) in the reactor effluent that
    # condenses into the separator liquid at nominal condenser cooling.
    "condensation_fraction_nominal": 0.93,
    "condensation_cooling_gain": 0.30,

    # Fraction of light components (A-C) dissolved into the separator liquid.
    "lights_in_liquid_fraction": 0.004,

    # Stripping efficiency: fraction of light/intermediate components removed
    # from the stripper feed back to the vapour loop at nominal steam.
    "stripping_efficiency_nominal": 0.88,
    "stripping_steam_gain": 0.25,

    # Compressor work (kW) per unit of normalized recycle flow.
    "compressor_work_nominal": 341.43,

    # Slow ambient random-walk magnitudes (per sqrt(hour)) used by the added
    # randomness model of Krotofil et al.; they force the regulatory layer to
    # keep moving the valves, which is what makes hold-last-value (DoS)
    # attacks eventually observable.
    "feed1_pressure_walk_std": 0.035,
    "feed4_composition_walk_std": 0.012,
    "cw_inlet_walk_std": 0.35,
}
