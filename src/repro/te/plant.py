"""The reduced-order Tennessee-Eastman plant model.

:class:`TEPlant` implements the :class:`~repro.process.interfaces.PlantModel`
interface with the standard TE variable set: 41 measured variables (XMEAS),
12 manipulated variables (XMV, valve positions in percent) and 20 process
disturbances (IDV).  The dynamics are a grey-box reduction of the Downs &
Vogel flowsheet — reactor, partial condenser + separator, stripper, recycle
compressor and purge — calibrated at construction time so that the published
base case is a steady state of the model (see :mod:`repro.te.balance`).

The "added randomness" model of Krotofil et al. is reproduced with two
ingredients: per-sensor Gaussian measurement noise (see
:class:`repro.process.noise.GaussianMeasurementNoise`) and slow ambient
random walks on the A-feed supply pressure, the stream-4 composition and the
cooling-water inlet temperatures, which force the regulatory control layer to
keep adjusting the valves during normal operation.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.common.randomness import RandomStream
from repro.process.interfaces import PlantModel
from repro.process.noise import GaussianMeasurementNoise
from repro.process.variables import VariableRegistry
from repro.te.balance import (
    NominalBalance,
    component_vector,
    solve_nominal_balance,
    stripping_fractions,
)
from repro.te.constants import COMPONENTS, INTERNAL, XMEAS_TABLE, XMV_TABLE
from repro.te.kinetics import ReactionKinetics
from repro.te.state import TEState
from repro.te.variables import build_xmeas_registry, build_xmv_registry

__all__ = ["TEPlant"]

_LIGHT_MASK = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0])
_HEAVY_MASK = 1.0 - _LIGHT_MASK
_IDX = {component: i for i, component in enumerate(COMPONENTS)}


class TEPlant(PlantModel):
    """Dynamic Tennessee-Eastman plant.

    Parameters
    ----------
    seed:
        Seed of the plant's random streams (measurement noise and ambient
        variation).  Can be overridden per run through :meth:`reset`.
    enable_process_variation:
        Whether the slow ambient random walks of the added randomness model
        are active.  Measurement noise is controlled separately through the
        ``noisy`` flag of :meth:`measure`.
    noise_scale:
        Global multiplier on the per-sensor measurement-noise magnitudes.
    """

    def __init__(
        self,
        seed: int = 0,
        enable_process_variation: bool = True,
        noise_scale: float = 1.0,
    ):
        self._xmeas_registry = build_xmeas_registry()
        self._xmv_registry = build_xmv_registry()
        self._kinetics = ReactionKinetics()
        self._noise_scale = float(noise_scale)
        self.enable_process_variation = bool(enable_process_variation)

        self._balance: NominalBalance = solve_nominal_balance()
        self._cond_base = self._balance.condensation
        self._strip_base = stripping_fractions()
        self._xmv_nominal = np.array([row[1] for row in XMV_TABLE], dtype=float)
        self._xmeas_nominal = np.array([row[2] for row in XMEAS_TABLE], dtype=float)

        self._calibrate()
        self.reset(seed)

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def _calibrate(self) -> None:
        """Derive flow coefficients and output scalings from the nominal balance."""
        balance = self._balance

        self._feed1_comp = component_vector(INTERNAL["feed1_composition"])
        self._feed4_comp_base = component_vector(INTERNAL["feed4_composition"])
        self._feed1_per_percent = float(INTERNAL["feed1_nominal"]) / self._xmv_nominal[2]
        self._feed1_capacity = 1.4 * float(INTERNAL["feed1_nominal"])
        self._feed2_per_percent = float(INTERNAL["feed2_nominal"]) / self._xmv_nominal[0]
        self._feed3_per_percent = float(INTERNAL["feed3_nominal"]) / self._xmv_nominal[1]
        self._feed4_per_percent = float(INTERNAL["feed4_nominal"]) / self._xmv_nominal[3]
        self._purge_per_percent = float(INTERNAL["purge_nominal"]) / self._xmv_nominal[5]
        self._steam_per_percent = float(INTERNAL["steam_nominal"]) / self._xmv_nominal[8]

        self._f10_nominal = balance.separator_underflow_total
        self._f11_nominal = balance.product_total
        self._f10_per_percent = self._f10_nominal / self._xmv_nominal[6]
        self._f11_per_percent = self._f11_nominal / self._xmv_nominal[7]
        self._recycle_nominal = balance.recycle_total
        self._reactor_feed_nominal = balance.reactor_feed_total
        self._purge_nominal = balance.purge_total
        self._effluent_nominal = float(balance.effluent.sum())

        reactor_inventory = component_vector(
            INTERNAL["reactor_vapor_nominal"]
        ) + component_vector(INTERNAL["reactor_liquid_nominal"])
        self._k_reactor = balance.effluent / np.maximum(reactor_inventory, 1e-9)

        self._pressure_nominal = float(INTERNAL["reactor_pressure_nominal"])
        self._sep_pressure_nominal = float(INTERNAL["separator_pressure_nominal"])
        self._dp_nominal = self._pressure_nominal - self._sep_pressure_nominal

        # Nominal composition fractions used to calibrate the analyser outputs.
        reactor_in_total = max(balance.reactor_feed_total, 1e-12)
        self._stream6_nominal_frac = balance.reactor_in / reactor_in_total
        self._purge_nominal_frac = balance.purge / max(balance.purge_total, 1e-12)
        self._product_nominal_frac = balance.product / max(balance.product_total, 1e-12)

        # Initial liquid-inventory compositions consistent with the nominal
        # stream table (totals keep the nominal vessel levels from constants).
        separator_total = sum(INTERNAL["separator_liquid_nominal"].values())
        liquid_fraction = balance.separator_liquid_in / max(
            balance.separator_underflow_total, 1e-12
        )
        self._initial_separator_liquid = separator_total * liquid_fraction
        stripper_total = sum(INTERNAL["stripper_liquid_nominal"].values())
        product_fraction = balance.product / max(balance.product_total, 1e-12)
        self._initial_stripper_liquid = stripper_total * product_fraction

    # ------------------------------------------------------------------
    # PlantModel interface
    # ------------------------------------------------------------------
    @property
    def measured_variables(self) -> VariableRegistry:
        return self._xmeas_registry

    @property
    def manipulated_variables(self) -> VariableRegistry:
        return self._xmv_registry

    @property
    def time_hours(self) -> float:
        return self.state.time_hours

    @property
    def nominal_balance(self) -> NominalBalance:
        """The construction-time nominal stream table."""
        return self._balance

    def reset(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = getattr(self, "_seed", 0)
        self._seed = int(seed)
        self.state = TEState.nominal()
        self.state.recycle_flow = self._recycle_nominal
        self.state.separator_liquid = self._initial_separator_liquid.copy()
        self.state.stripper_liquid = self._initial_stripper_liquid.copy()
        root = RandomStream(self._seed, "te-plant")
        self._noise = GaussianMeasurementNoise(
            self._xmeas_registry, root.child("measurement-noise"), self._noise_scale
        )
        self._ambient = root.child("ambient")
        self._stuck_reactor_cw: Optional[float] = None
        self._stuck_condenser_cw: Optional[float] = None
        self._last_flows = self._compute_flows(
            self._xmv_nominal.copy(), self.state, {}
        )

    def safety_quantities(self) -> Dict[str, float]:
        return {
            "reactor_pressure": self.state.reactor_pressure_kpa,
            "reactor_level": self.state.reactor_level_percent,
            "separator_level": self.state.separator_level_percent,
            "stripper_level": self.state.stripper_level_percent,
        }

    # ------------------------------------------------------------------
    # Flow network
    # ------------------------------------------------------------------
    def _effective_xmv(self, xmv: np.ndarray, idv: Dict[int, float]) -> np.ndarray:
        """Apply valve-sticking disturbances IDV(14)/IDV(15)."""
        effective = self._xmv_registry.clip(np.asarray(xmv, dtype=float).ravel())
        if idv.get(14):
            if self._stuck_reactor_cw is None:
                self._stuck_reactor_cw = float(effective[9])
            effective[9] = self._stuck_reactor_cw
        else:
            self._stuck_reactor_cw = None
        if idv.get(15):
            if self._stuck_condenser_cw is None:
                self._stuck_condenser_cw = float(effective[10])
            effective[10] = self._stuck_condenser_cw
        else:
            self._stuck_condenser_cw = None
        return effective

    def _feed4_composition(self, idv: Dict[int, float], state: TEState) -> np.ndarray:
        """Stream-4 composition with IDV(1), IDV(2), IDV(8) and ambient drift."""
        composition = self._feed4_comp_base.copy()
        shift = state.feed4_composition_shift
        if idv.get(8):
            shift *= 8.0
        if idv.get(1):
            shift += -0.05 * float(idv[1])
        composition[_IDX["A"]] = max(composition[_IDX["A"]] + shift, 0.01)
        composition[_IDX["C"]] = max(composition[_IDX["C"]] - shift, 0.01)
        if idv.get(2):
            extra_b = 0.025 * float(idv[2])
            composition[_IDX["B"]] += extra_b
            composition[_IDX["A"]] = max(composition[_IDX["A"]] - extra_b / 2.0, 0.01)
            composition[_IDX["C"]] = max(composition[_IDX["C"]] - extra_b / 2.0, 0.01)
        return composition / composition.sum()

    def _compute_flows(
        self, xmv: np.ndarray, state: TEState, idv: Dict[int, float]
    ) -> Dict[str, np.ndarray]:
        """Evaluate every stream of the flow network for the given state."""
        effective = self._effective_xmv(xmv, idv)

        feed1_available = 0.0 if idv.get(6) else 1.0
        feed4_available = 0.8 if idv.get(7) else 1.0

        feed1_total = min(
            self._feed1_per_percent * effective[2], self._feed1_capacity
        ) * feed1_available * state.feed1_pressure_factor
        feed1 = feed1_total * self._feed1_comp

        feed2 = component_vector({"D": self._feed2_per_percent * effective[0]})
        feed3 = component_vector({"E": self._feed3_per_percent * effective[1]})
        feed4_total = self._feed4_per_percent * effective[3] * feed4_available
        feed4 = feed4_total * self._feed4_composition(idv, state)

        reactor_pressure = state.reactor_pressure_kpa
        separator_pressure = state.separator_pressure_kpa
        pressure_ratio = separator_pressure / self._sep_pressure_nominal

        # np.power, not ``**``: CPython's float pow (libm) disagrees with the
        # ufunc's x*x fast path by 1 ulp on some inputs, and the batched
        # backend evaluates this expression through the ufunc row-wise.
        purge_total = self._purge_per_percent * effective[5] * np.power(pressure_ratio, 2)
        recycle_target = (
            self._recycle_nominal
            * pressure_ratio
            * (1.0 + 0.4 * (self._xmv_nominal[4] - effective[4]) / 100.0)
        )

        vapor_inventory = state.separator_vapor
        vapor_total = max(float(vapor_inventory.sum()), 1e-9)
        vapor_fraction = vapor_inventory / vapor_total

        # Vapour leaves the reactor roughly in proportion to its pressure
        # (choked-flow-like behaviour).  Using the reactor pressure alone —
        # rather than the reactor/separator differential — keeps the coupled
        # vapour-inventory dynamics well-conditioned for explicit integration;
        # the purge still regulates the loop pressure through the recycle
        # path (purge lowers the separator pressure, which lowers the recycle
        # flow returned to the reactor).
        pressure_factor = max(reactor_pressure, 0.0) / self._pressure_nominal
        effluent = self._k_reactor * (
            state.reactor_vapor * _LIGHT_MASK * pressure_factor
            + state.reactor_liquid * _HEAVY_MASK
        )

        condenser_shift = (
            float(INTERNAL["condensation_cooling_gain"])
            * (effective[10] - self._xmv_nominal[10])
            / 100.0
            + 0.004 * (float(INTERNAL["separator_temp_nominal"]) - state.separator_temp)
        )
        cond = np.where(
            _HEAVY_MASK > 0,
            np.clip(self._cond_base + condenser_shift, 0.02, 0.98),
            self._cond_base,
        )

        separator_level = max(state.separator_level_percent, 0.0)
        f10_total = (
            self._f10_per_percent
            * effective[6]
            * np.sqrt(separator_level / 50.0)
        )
        liquid_inventory = state.separator_liquid
        liquid_total = max(float(liquid_inventory.sum()), 1e-9)
        f10 = f10_total * liquid_inventory / liquid_total

        steam = self._steam_per_percent * effective[8]
        steam_factor = 1.0 + float(INTERNAL["stripping_steam_gain"]) * (
            steam / float(INTERNAL["steam_nominal"]) - 1.0
        )
        strip = np.clip(self._strip_base * steam_factor, 0.0, 0.995)
        overhead = strip * f10

        stripper_level = max(state.stripper_level_percent, 0.0)
        f11_total = (
            self._f11_per_percent
            * effective[7]
            * np.sqrt(stripper_level / 50.0)
        )
        stripper_inventory = state.stripper_liquid
        stripper_total = max(float(stripper_inventory.sum()), 1e-9)
        f11 = f11_total * stripper_inventory / stripper_total

        reactor_in = feed1 + feed2 + feed3 + feed4 + state.recycle_flow * vapor_fraction + overhead

        return {
            "xmv_effective": effective,
            "feed1": feed1,
            "feed2": feed2,
            "feed3": feed3,
            "feed4": feed4,
            "reactor_in": reactor_in,
            "effluent": effluent,
            "condensation": cond,
            "purge_total": np.array([purge_total]),
            "recycle_target": np.array([recycle_target]),
            "vapor_fraction": vapor_fraction,
            "f10": f10,
            "f11": f11,
            "overhead": overhead,
            "steam": np.array([steam]),
            "reactor_pressure": np.array([reactor_pressure]),
            "separator_pressure": np.array([separator_pressure]),
        }

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(
        self,
        manipulated: np.ndarray,
        dt_hours: float,
        disturbances: Optional[Dict[int, float]] = None,
    ) -> None:
        idv = dict(disturbances or {})
        state = self.state
        dt = float(dt_hours)

        self._update_ambient(dt, idv)
        flows = self._compute_flows(manipulated, state, idv)
        self._last_flows = flows

        rates = self._kinetics.rates(
            state.reactor_vapor,
            state.reactor_liquid,
            state.reactor_temp,
            state.kinetics_drift,
        )
        production = rates.consumption()

        effluent = flows["effluent"]
        reactor_in = flows["reactor_in"]
        cond = flows["condensation"]
        purge_total = float(flows["purge_total"][0])
        vapor_fraction = flows["vapor_fraction"]
        f10 = flows["f10"]
        f11 = flows["f11"]
        overhead = flows["overhead"]

        d_reactor = reactor_in + production - effluent
        state.reactor_vapor += dt * d_reactor * _LIGHT_MASK
        state.reactor_liquid += dt * d_reactor * _HEAVY_MASK

        vapor_out = (state.recycle_flow + purge_total) * vapor_fraction
        state.separator_vapor += dt * (effluent * (1.0 - cond) - vapor_out)
        state.separator_liquid += dt * (effluent * cond - f10)
        state.stripper_liquid += dt * (f10 - overhead - f11)
        state.clip_nonnegative()

        self._update_temperatures(flows, rates, idv, dt)

        recycle_target = float(flows["recycle_target"][0])
        tau_recycle = float(INTERNAL["recycle_tau"])
        state.recycle_flow += dt * (recycle_target - state.recycle_flow) / tau_recycle
        state.recycle_flow = max(state.recycle_flow, 0.0)

        state.time_hours += dt

    def _update_ambient(self, dt: float, idv: Dict[int, float]) -> None:
        """Advance the slow ambient random walks of the added randomness model."""
        state = self.state
        if not self.enable_process_variation:
            return
        sqrt_dt = np.sqrt(dt)
        walk = float(INTERNAL["feed1_pressure_walk_std"])
        state.feed1_pressure_factor += (
            walk * sqrt_dt * self._ambient.standard_normal()
            + 0.15 * (1.0 - state.feed1_pressure_factor) * dt
        )
        state.feed1_pressure_factor = float(np.clip(state.feed1_pressure_factor, 0.7, 1.3))

        comp_walk = float(INTERNAL["feed4_composition_walk_std"])
        state.feed4_composition_shift += (
            comp_walk * sqrt_dt * self._ambient.standard_normal()
            - 0.2 * state.feed4_composition_shift * dt
        )
        state.feed4_composition_shift = float(
            np.clip(state.feed4_composition_shift, -0.06, 0.06)
        )

        cw_walk = float(INTERNAL["cw_inlet_walk_std"])
        state.cw_inlet_shift += (
            cw_walk * sqrt_dt * self._ambient.standard_normal()
            - 0.3 * state.cw_inlet_shift * dt
        )
        state.cw_inlet_shift = float(np.clip(state.cw_inlet_shift, -4.0, 4.0))

        if idv.get(13):
            state.kinetics_drift += 0.05 * sqrt_dt * self._ambient.standard_normal() - 0.02 * dt
            state.kinetics_drift = float(np.clip(state.kinetics_drift, -0.5, 0.2))
        else:
            state.kinetics_drift *= max(1.0 - 0.5 * dt, 0.0)

    def _cooling_water_inlets(self, idv: Dict[int, float]) -> Dict[str, float]:
        """Reactor / condenser cooling-water inlet temperatures with disturbances."""
        state = self.state
        reactor_inlet = float(INTERNAL["reactor_cw_inlet_nominal"])
        condenser_inlet = float(INTERNAL["condenser_cw_inlet_nominal"])
        reactor_inlet += 5.0 * float(idv.get(4, 0.0))
        condenser_inlet += 5.0 * float(idv.get(5, 0.0))
        reactor_scale = 1.0 if idv.get(11) else 0.15
        condenser_scale = 1.0 if idv.get(12) else 0.15
        reactor_inlet += reactor_scale * state.cw_inlet_shift
        condenser_inlet += condenser_scale * state.cw_inlet_shift
        return {"reactor": reactor_inlet, "condenser": condenser_inlet}

    def _update_temperatures(self, flows, rates, idv: Dict[int, float], dt: float) -> None:
        state = self.state
        effective = flows["xmv_effective"]
        inlets = self._cooling_water_inlets(idv)

        reactor_inlet = inlets["reactor"]
        nominal_driving = float(INTERNAL["reactor_temp_nominal"]) - float(
            INTERNAL["reactor_cw_inlet_nominal"]
        )
        cooling_norm = (effective[9] / self._xmv_nominal[9]) * (
            (state.reactor_temp - reactor_inlet) / nominal_driving
        )
        heat_norm = rates.heat_release
        reactor_target = (
            float(INTERNAL["reactor_temp_nominal"])
            + float(INTERNAL["reactor_heat_gain"]) * (heat_norm - 1.0)
            - float(INTERNAL["reactor_cooling_gain"]) * (cooling_norm - 1.0)
            + 1.5 * float(idv.get(3, 0.0))
        )
        if idv.get(9) and self.enable_process_variation:
            reactor_target += 0.6 * self._ambient.standard_normal()
        if idv.get(10) and self.enable_process_variation:
            reactor_target += 0.4 * self._ambient.standard_normal()
        tau_r = float(INTERNAL["reactor_temp_tau"])
        state.reactor_temp += dt * (reactor_target - state.reactor_temp) / tau_r

        condenser_inlet = inlets["condenser"]
        effluent_total = float(flows["effluent"].sum())
        nominal_sep_driving = float(INTERNAL["separator_temp_nominal"]) - float(
            INTERNAL["condenser_cw_inlet_nominal"]
        )
        cooling_ratio = max(effective[10] / self._xmv_nominal[10], 0.05)
        # np.power instead of ``**``: the ufunc loop is what the batched
        # backend evaluates row-wise, and np.float64.__pow__ does not take
        # that loop — routing both paths through the same ufunc is what keeps
        # serial and batched runs bitwise-identical (same shape-stable
        # discipline as the einsum PCA projections).
        separator_target = condenser_inlet + nominal_sep_driving * (
            effluent_total / self._effluent_nominal
        ) / np.power(cooling_ratio, 0.6)
        tau_s = float(INTERNAL["separator_temp_tau"])
        state.separator_temp += dt * (separator_target - state.separator_temp) / tau_s

        steam = float(flows["steam"][0])
        f10_total = float(flows["f10"].sum())
        stripper_target = (
            float(INTERNAL["stripper_temp_nominal"])
            + 25.0 * (steam / float(INTERNAL["steam_nominal"]) - 1.0)
            - 12.0 * (f10_total / self._f10_nominal - 1.0)
        )
        tau_c = float(INTERNAL["stripper_temp_tau"])
        state.stripper_temp += dt * (stripper_target - state.stripper_temp) / tau_c

        tau_cw = float(INTERNAL["cw_outlet_tau"])
        nominal_rise = float(INTERNAL["reactor_cw_outlet_nominal"]) - float(
            INTERNAL["reactor_cw_inlet_nominal"]
        )
        reactor_cw_target = reactor_inlet + nominal_rise * (
            (state.reactor_temp - reactor_inlet) / nominal_driving
        ) * np.power(self._xmv_nominal[9] / max(effective[9], 5.0), 0.8)
        state.reactor_cw_outlet += dt * (reactor_cw_target - state.reactor_cw_outlet) / tau_cw

        nominal_cond_rise = float(INTERNAL["separator_cw_outlet_nominal"]) - float(
            INTERNAL["condenser_cw_inlet_nominal"]
        )
        condenser_cw_target = condenser_inlet + nominal_cond_rise * (
            (state.separator_temp - condenser_inlet) / nominal_sep_driving
        ) * np.power(self._xmv_nominal[10] / max(effective[10], 5.0), 0.8)
        state.separator_cw_outlet += (
            dt * (condenser_cw_target - state.separator_cw_outlet) / tau_cw
        )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _composition_percent(
        self, vector: np.ndarray, nominal_fraction: np.ndarray, published: np.ndarray
    ) -> np.ndarray:
        """Scale internal mole fractions so the nominal point matches the table."""
        total = max(float(vector.sum()), 1e-9)
        fraction = vector / total
        scale = np.where(nominal_fraction > 1e-9, published / np.maximum(nominal_fraction, 1e-9), 0.0)
        return fraction * scale

    def measure(self, noisy: bool = True) -> np.ndarray:
        flows = self._last_flows
        state = self.state
        xmeas = np.zeros(41)

        feed1_total = float(flows["feed1"].sum())
        feed2_total = float(flows["feed2"].sum())
        feed3_total = float(flows["feed3"].sum())
        feed4_total = float(flows["feed4"].sum())
        reactor_in = flows["reactor_in"]
        reactor_feed_total = float(reactor_in.sum())
        purge_total = float(flows["purge_total"][0])
        f10_total = float(flows["f10"].sum())
        f11_total = float(flows["f11"].sum())
        steam = float(flows["steam"][0])

        xmeas[0] = 0.25052 * feed1_total / float(INTERNAL["feed1_nominal"])
        xmeas[1] = 3664.0 * feed2_total / float(INTERNAL["feed2_nominal"])
        xmeas[2] = 4509.3 * feed3_total / float(INTERNAL["feed3_nominal"])
        xmeas[3] = 9.3477 * feed4_total / float(INTERNAL["feed4_nominal"])
        xmeas[4] = 26.902 * state.recycle_flow / self._recycle_nominal
        xmeas[5] = 42.339 * reactor_feed_total / self._reactor_feed_nominal
        xmeas[6] = state.reactor_pressure_kpa
        xmeas[7] = state.reactor_level_percent
        xmeas[8] = state.reactor_temp
        xmeas[9] = 0.33712 * purge_total / self._purge_nominal
        xmeas[10] = state.separator_temp
        xmeas[11] = state.separator_level_percent
        xmeas[12] = state.separator_pressure_kpa
        xmeas[13] = 25.160 * f10_total / self._f10_nominal
        xmeas[14] = state.stripper_level_percent
        xmeas[15] = 3102.2 * (0.5 + 0.5 * state.separator_pressure_kpa / self._sep_pressure_nominal)
        xmeas[16] = 22.949 * f11_total / self._f11_nominal
        xmeas[17] = state.stripper_temp
        xmeas[18] = steam
        xmeas[19] = 341.43 * (state.recycle_flow / self._recycle_nominal) * (
            state.reactor_pressure_kpa / self._pressure_nominal
        )
        xmeas[20] = state.reactor_cw_outlet
        xmeas[21] = state.separator_cw_outlet

        stream6_published = np.concatenate([self._xmeas_nominal[22:28], np.zeros(2)])
        stream6 = self._composition_percent(
            reactor_in, self._stream6_nominal_frac, stream6_published
        )
        xmeas[22:28] = stream6[:6]

        purge_fraction = self._composition_percent(
            flows["vapor_fraction"], self._purge_nominal_frac, self._xmeas_nominal[28:36]
        )
        xmeas[28:36] = purge_fraction

        product_fraction = self._composition_percent(
            state.stripper_liquid, self._product_nominal_frac,
            np.concatenate([np.zeros(3), self._xmeas_nominal[36:41]]),
        )
        xmeas[36:41] = product_fraction[3:]

        if noisy:
            return self._noise.apply(xmeas)
        return self._xmeas_registry.clip(xmeas)
