"""Batched Tennessee-Eastman plant: advance ``B`` independent runs at once.

:class:`BatchTEPlant` holds the state of ``B`` plants as ``(B, ...)`` arrays
(:class:`~repro.te.state.BatchTEState`) and evaluates the flow network,
kinetics, balances and measurement map of :class:`~repro.te.plant.TEPlant`
row-wise with one set of ufunc calls per step instead of one Python
interpreter pass per run.  Every expression is a line-by-line transcription
of the serial plant — same operations, same order, same ufuncs — so row
``i`` of a batched run is **bitwise-identical** to the serial run with the
same seed (NumPy's elementwise ufuncs produce identical results regardless
of array shape; reductions over the trailing axis of a C-contiguous array
use the same pairwise algorithm as their 1-D counterparts; and
``np.random.Generator`` streams are invariant to draw granularity, which is
what lets the per-row noise streams be served from pre-drawn blocks).

Randomness keeps the serial seed-derivation scheme: each row owns the two
``RandomStream`` children a serial :class:`TEPlant` would derive from its
seed (``te-plant/measurement-noise`` and ``te-plant/ambient``) — only the
draws are batched through
:class:`~repro.common.randomness.BlockedStandardNormal`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.common.randomness import BlockedStandardNormal, RandomStream
from repro.process.disturbances import BatchIdv
from repro.te.constants import COMPONENTS, INTERNAL
from repro.te.plant import _HEAVY_MASK, _IDX, _LIGHT_MASK, TEPlant
from repro.te.state import BatchTEState

__all__ = ["BatchTEPlant"]


@dataclass
class _AmbientDraws:
    """One step's ambient random-walk draws for every row, ``(B,)`` each.

    Rows whose disturbance flags skip a draw keep a zero placeholder; the
    placeholder is never consumed (the update selects the no-draw branch),
    so the underlying streams advance exactly as the serial plant's would.
    """

    walk: np.ndarray
    composition: np.ndarray
    cooling: np.ndarray
    kinetics: np.ndarray
    reactor_9: np.ndarray
    reactor_10: np.ndarray


class BatchTEPlant(TEPlant):
    """``B`` Tennessee-Eastman plants advanced in lockstep.

    Parameters
    ----------
    seeds:
        Per-row root seeds (one serial :class:`TEPlant` seed per run).
    enable_process_variation / noise_scale:
        As for :class:`TEPlant`; shared by every row.
    rng_block:
        Draws pre-fetched per refill of each row's random streams.
    """

    def __init__(
        self,
        seeds: Sequence[int],
        enable_process_variation: bool = True,
        noise_scale: float = 1.0,
        rng_block: int = 256,
    ):
        self._rng_block = int(rng_block)
        # The parent constructor calibrates the shared flow coefficients and
        # ends with reset(seed); our reset override ignores the scalar seed
        # path and builds the batched state from ``seeds`` instead.
        self._batch_seeds = [int(seed) for seed in seeds]
        super().__init__(
            seed=0,
            enable_process_variation=enable_process_variation,
            noise_scale=noise_scale,
        )

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of runs in the batch."""
        return self.state.n_rows

    @property
    def time_hours(self) -> float:
        return self.state.time_hours

    def reset(self, seed: Optional[int] = None) -> None:
        """Rebuild the batched state and per-row random streams."""
        del seed  # rows keep their construction-time seeds
        n_rows = len(self._batch_seeds)
        self.state = BatchTEState.nominal(n_rows)
        self.state.recycle_flow = np.full(n_rows, self._recycle_nominal)
        self.state.separator_liquid = np.tile(
            self._initial_separator_liquid, (n_rows, 1)
        )
        self.state.stripper_liquid = np.tile(
            self._initial_stripper_liquid, (n_rows, 1)
        )
        self._noise_stds = self._xmeas_registry.noise_stds() * self._noise_scale
        self._noise_streams = []
        self._ambient_streams = []
        for row_seed in self._batch_seeds:
            root = RandomStream(row_seed, "te-plant")
            self._noise_streams.append(
                BlockedStandardNormal(
                    root.child("measurement-noise"),
                    width=len(self._xmeas_registry),
                    block=self._rng_block,
                )
            )
            self._ambient_streams.append(
                BlockedStandardNormal(root.child("ambient"), block=self._rng_block)
            )
        self._stuck_reactor_cw_rows = np.full(n_rows, np.nan)
        self._stuck_condenser_cw_rows = np.full(n_rows, np.nan)
        self._last_flows = self._compute_flows_batch(
            np.tile(self._xmv_nominal, (n_rows, 1)),
            self.state,
            BatchIdv.none(n_rows),
        )

    def take(self, indices: np.ndarray) -> None:
        """Keep only the given rows (compaction after trips / early stops)."""
        self.state.take(indices)
        index_list = [int(i) for i in np.asarray(indices)]
        self._batch_seeds = [self._batch_seeds[i] for i in index_list]
        self._noise_streams = [self._noise_streams[i] for i in index_list]
        self._ambient_streams = [self._ambient_streams[i] for i in index_list]
        self._stuck_reactor_cw_rows = self._stuck_reactor_cw_rows[indices]
        self._stuck_condenser_cw_rows = self._stuck_condenser_cw_rows[indices]
        self._last_flows = {
            key: value[indices] for key, value in self._last_flows.items()
        }

    def safety_quantities(self) -> Dict[str, np.ndarray]:
        """Per-row ``(B,)`` arrays of the monitored quantities."""
        return {
            "reactor_pressure": self.state.reactor_pressure_kpa,
            "reactor_level": self.state.reactor_level_percent,
            "separator_level": self.state.separator_level_percent,
            "stripper_level": self.state.stripper_level_percent,
        }

    # ------------------------------------------------------------------
    # Flow network (row-wise transcription of TEPlant._compute_flows)
    # ------------------------------------------------------------------
    def _effective_xmv_batch(self, xmv: np.ndarray, idv: BatchIdv) -> np.ndarray:
        """Row-wise valve sticking, mirroring :meth:`TEPlant._effective_xmv`."""
        effective = self._xmv_registry.clip(np.asarray(xmv, dtype=float))
        for index, stuck in (
            (14, self._stuck_reactor_cw_rows),
            (15, self._stuck_condenser_cw_rows),
        ):
            column = 9 if index == 14 else 10
            active = idv.active(index)
            newly = active & np.isnan(stuck)
            stuck[newly] = effective[newly, column]
            effective[:, column] = np.where(active, stuck, effective[:, column])
            stuck[~active] = np.nan
        return effective

    def _feed4_composition_batch(
        self, idv: BatchIdv, state: BatchTEState
    ) -> np.ndarray:
        """Row-wise stream-4 composition (:meth:`TEPlant._feed4_composition`)."""
        composition = np.tile(self._feed4_comp_base, (state.n_rows, 1))
        shift = state.feed4_composition_shift
        shift = np.where(idv.active(8), shift * 8.0, shift)
        shift = np.where(idv.active(1), shift + -0.05 * idv.value(1), shift)
        a, b, c = _IDX["A"], _IDX["B"], _IDX["C"]
        composition[:, a] = np.maximum(composition[:, a] + shift, 0.01)
        composition[:, c] = np.maximum(composition[:, c] - shift, 0.01)
        active2 = idv.active(2)
        if active2.any():
            extra_b = 0.025 * idv.value(2)
            composition[:, b] = np.where(
                active2, composition[:, b] + extra_b, composition[:, b]
            )
            composition[:, a] = np.where(
                active2,
                np.maximum(composition[:, a] - extra_b / 2.0, 0.01),
                composition[:, a],
            )
            composition[:, c] = np.where(
                active2,
                np.maximum(composition[:, c] - extra_b / 2.0, 0.01),
                composition[:, c],
            )
        return composition / composition.sum(axis=1)[:, None]

    def _compute_flows_batch(
        self, xmv: np.ndarray, state: BatchTEState, idv: BatchIdv
    ) -> Dict[str, np.ndarray]:
        """Row-wise stream table, mirroring :meth:`TEPlant._compute_flows`.

        Per-row scalars of the serial path become ``(B,)`` arrays and
        component vectors become ``(B, 8)`` arrays; every expression keeps
        the serial operand order so each row stays bitwise-identical.
        """
        effective = self._effective_xmv_batch(xmv, idv)

        feed1_available = np.where(idv.active(6), 0.0, 1.0)
        feed4_available = np.where(idv.active(7), 0.8, 1.0)

        feed1_total = np.minimum(
            self._feed1_per_percent * effective[:, 2], self._feed1_capacity
        ) * feed1_available * state.feed1_pressure_factor
        feed1 = feed1_total[:, None] * self._feed1_comp

        n_rows = state.n_rows
        feed2 = np.zeros((n_rows, len(COMPONENTS)))
        feed2[:, _IDX["D"]] = self._feed2_per_percent * effective[:, 0]
        feed3 = np.zeros((n_rows, len(COMPONENTS)))
        feed3[:, _IDX["E"]] = self._feed3_per_percent * effective[:, 1]
        feed4_total = self._feed4_per_percent * effective[:, 3] * feed4_available
        feed4 = feed4_total[:, None] * self._feed4_composition_batch(idv, state)

        reactor_pressure = state.reactor_pressure_kpa
        separator_pressure = state.separator_pressure_kpa
        pressure_ratio = separator_pressure / self._sep_pressure_nominal

        purge_total = self._purge_per_percent * effective[:, 5] * pressure_ratio ** 2
        recycle_target = (
            self._recycle_nominal
            * pressure_ratio
            * (1.0 + 0.4 * (self._xmv_nominal[4] - effective[:, 4]) / 100.0)
        )

        vapor_inventory = state.separator_vapor
        vapor_total = np.maximum(vapor_inventory.sum(axis=1), 1e-9)
        vapor_fraction = vapor_inventory / vapor_total[:, None]

        pressure_factor = np.maximum(reactor_pressure, 0.0) / self._pressure_nominal
        effluent = self._k_reactor * (
            state.reactor_vapor * _LIGHT_MASK * pressure_factor[:, None]
            + state.reactor_liquid * _HEAVY_MASK
        )

        condenser_shift = (
            float(INTERNAL["condensation_cooling_gain"])
            * (effective[:, 10] - self._xmv_nominal[10])
            / 100.0
            + 0.004 * (float(INTERNAL["separator_temp_nominal"]) - state.separator_temp)
        )
        cond = np.where(
            _HEAVY_MASK > 0,
            np.clip(self._cond_base + condenser_shift[:, None], 0.02, 0.98),
            self._cond_base,
        )

        separator_level = np.maximum(state.separator_level_percent, 0.0)
        f10_total = (
            self._f10_per_percent
            * effective[:, 6]
            * np.sqrt(separator_level / 50.0)
        )
        liquid_inventory = state.separator_liquid
        liquid_total = np.maximum(liquid_inventory.sum(axis=1), 1e-9)
        f10 = f10_total[:, None] * liquid_inventory / liquid_total[:, None]

        steam = self._steam_per_percent * effective[:, 8]
        steam_factor = 1.0 + float(INTERNAL["stripping_steam_gain"]) * (
            steam / float(INTERNAL["steam_nominal"]) - 1.0
        )
        strip = np.clip(self._strip_base * steam_factor[:, None], 0.0, 0.995)
        overhead = strip * f10

        stripper_level = np.maximum(state.stripper_level_percent, 0.0)
        f11_total = (
            self._f11_per_percent
            * effective[:, 7]
            * np.sqrt(stripper_level / 50.0)
        )
        stripper_inventory = state.stripper_liquid
        stripper_total = np.maximum(stripper_inventory.sum(axis=1), 1e-9)
        f11 = f11_total[:, None] * stripper_inventory / stripper_total[:, None]

        reactor_in = (
            feed1
            + feed2
            + feed3
            + feed4
            + state.recycle_flow[:, None] * vapor_fraction
            + overhead
        )

        return {
            "xmv_effective": effective,
            "feed1": feed1,
            "feed2": feed2,
            "feed3": feed3,
            "feed4": feed4,
            "reactor_in": reactor_in,
            "effluent": effluent,
            "condensation": cond,
            "purge_total": purge_total,
            "recycle_target": recycle_target,
            "vapor_fraction": vapor_fraction,
            "f10": f10,
            "f11": f11,
            "overhead": overhead,
            "steam": steam,
            "reactor_pressure": reactor_pressure,
            "separator_pressure": separator_pressure,
        }

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def _draw_ambient(self, idv: BatchIdv) -> _AmbientDraws:
        """Consume each row's ambient draws for one step, in serial order.

        The serial plant draws, per step and in this order: the three base
        random walks, the IDV(13) kinetics walk when active, then the
        IDV(9)/IDV(10) temperature shocks inside the temperature update.
        Each row consumes exactly that many values from its own stream.
        """
        n_rows = idv.n_rows
        draws = _AmbientDraws(
            walk=np.zeros(n_rows),
            composition=np.zeros(n_rows),
            cooling=np.zeros(n_rows),
            kinetics=np.zeros(n_rows),
            reactor_9=np.zeros(n_rows),
            reactor_10=np.zeros(n_rows),
        )
        if not self.enable_process_variation:
            return draws
        active13 = idv.active(13)
        active9 = idv.active(9)
        active10 = idv.active(10)
        counts = 3 + active13.astype(int) + active9 + active10
        for row in range(n_rows):
            values = self._ambient_streams[row].take(int(counts[row]))
            draws.walk[row] = values[0]
            draws.composition[row] = values[1]
            draws.cooling[row] = values[2]
            cursor = 3
            if active13[row]:
                draws.kinetics[row] = values[cursor]
                cursor += 1
            if active9[row]:
                draws.reactor_9[row] = values[cursor]
                cursor += 1
            if active10[row]:
                draws.reactor_10[row] = values[cursor]
        return draws

    def step_batch(self, manipulated: np.ndarray, dt_hours: float, idv: BatchIdv) -> None:
        """Advance every row by ``dt_hours`` (mirrors :meth:`TEPlant.step`)."""
        state = self.state
        dt = float(dt_hours)

        draws = self._draw_ambient(idv)
        self._update_ambient_batch(dt, idv, draws)
        flows = self._compute_flows_batch(manipulated, state, idv)
        self._last_flows = flows

        rates = self._kinetics.rates_batch(
            state.reactor_vapor,
            state.reactor_liquid,
            state.reactor_temp,
            state.kinetics_drift,
        )
        production = rates.consumption()

        effluent = flows["effluent"]
        reactor_in = flows["reactor_in"]
        cond = flows["condensation"]
        purge_total = flows["purge_total"]
        vapor_fraction = flows["vapor_fraction"]
        f10 = flows["f10"]
        f11 = flows["f11"]
        overhead = flows["overhead"]

        d_reactor = reactor_in + production - effluent
        state.reactor_vapor += dt * d_reactor * _LIGHT_MASK
        state.reactor_liquid += dt * d_reactor * _HEAVY_MASK

        vapor_out = (state.recycle_flow + purge_total)[:, None] * vapor_fraction
        state.separator_vapor += dt * (effluent * (1.0 - cond) - vapor_out)
        state.separator_liquid += dt * (effluent * cond - f10)
        state.stripper_liquid += dt * (f10 - overhead - f11)
        state.clip_nonnegative()

        self._update_temperatures_batch(flows, rates, idv, dt, draws)

        recycle_target = flows["recycle_target"]
        tau_recycle = float(INTERNAL["recycle_tau"])
        state.recycle_flow = state.recycle_flow + dt * (
            recycle_target - state.recycle_flow
        ) / tau_recycle
        state.recycle_flow = np.maximum(state.recycle_flow, 0.0)

        state.time_hours += dt

    def _update_ambient_batch(
        self, dt: float, idv: BatchIdv, draws: _AmbientDraws
    ) -> None:
        """Row-wise ambient walks (mirrors :meth:`TEPlant._update_ambient`)."""
        state = self.state
        if not self.enable_process_variation:
            return
        sqrt_dt = np.sqrt(dt)
        walk = float(INTERNAL["feed1_pressure_walk_std"])
        state.feed1_pressure_factor = np.clip(
            state.feed1_pressure_factor
            + (
                walk * sqrt_dt * draws.walk
                + 0.15 * (1.0 - state.feed1_pressure_factor) * dt
            ),
            0.7,
            1.3,
        )

        comp_walk = float(INTERNAL["feed4_composition_walk_std"])
        state.feed4_composition_shift = np.clip(
            state.feed4_composition_shift
            + (
                comp_walk * sqrt_dt * draws.composition
                - 0.2 * state.feed4_composition_shift * dt
            ),
            -0.06,
            0.06,
        )

        cw_walk = float(INTERNAL["cw_inlet_walk_std"])
        state.cw_inlet_shift = np.clip(
            state.cw_inlet_shift
            + (
                cw_walk * sqrt_dt * draws.cooling
                - 0.3 * state.cw_inlet_shift * dt
            ),
            -4.0,
            4.0,
        )

        active13 = idv.active(13)
        drifted = np.clip(
            state.kinetics_drift
            + (0.05 * sqrt_dt * draws.kinetics - 0.02 * dt),
            -0.5,
            0.2,
        )
        decayed = state.kinetics_drift * max(1.0 - 0.5 * dt, 0.0)
        state.kinetics_drift = np.where(active13, drifted, decayed)

    def _cooling_water_inlets_batch(self, idv: BatchIdv) -> Dict[str, np.ndarray]:
        """Row-wise cooling-water inlet temperatures, ``(B,)`` each."""
        state = self.state
        reactor_inlet = float(INTERNAL["reactor_cw_inlet_nominal"]) + 5.0 * idv.value(4)
        condenser_inlet = (
            float(INTERNAL["condenser_cw_inlet_nominal"]) + 5.0 * idv.value(5)
        )
        reactor_scale = np.where(idv.active(11), 1.0, 0.15)
        condenser_scale = np.where(idv.active(12), 1.0, 0.15)
        reactor_inlet = reactor_inlet + reactor_scale * state.cw_inlet_shift
        condenser_inlet = condenser_inlet + condenser_scale * state.cw_inlet_shift
        return {"reactor": reactor_inlet, "condenser": condenser_inlet}

    def _update_temperatures_batch(
        self, flows, rates, idv: BatchIdv, dt: float, draws: _AmbientDraws
    ) -> None:
        """Row-wise mirror of :meth:`TEPlant._update_temperatures`."""
        state = self.state
        effective = flows["xmv_effective"]
        inlets = self._cooling_water_inlets_batch(idv)

        reactor_inlet = inlets["reactor"]
        nominal_driving = float(INTERNAL["reactor_temp_nominal"]) - float(
            INTERNAL["reactor_cw_inlet_nominal"]
        )
        cooling_norm = (effective[:, 9] / self._xmv_nominal[9]) * (
            (state.reactor_temp - reactor_inlet) / nominal_driving
        )
        heat_norm = rates.heat_release
        reactor_target = (
            float(INTERNAL["reactor_temp_nominal"])
            + float(INTERNAL["reactor_heat_gain"]) * (heat_norm - 1.0)
            - float(INTERNAL["reactor_cooling_gain"]) * (cooling_norm - 1.0)
            + 1.5 * idv.value(3)
        )
        if self.enable_process_variation:
            reactor_target = np.where(
                idv.active(9), reactor_target + 0.6 * draws.reactor_9, reactor_target
            )
            reactor_target = np.where(
                idv.active(10), reactor_target + 0.4 * draws.reactor_10, reactor_target
            )
        tau_r = float(INTERNAL["reactor_temp_tau"])
        state.reactor_temp = state.reactor_temp + dt * (
            reactor_target - state.reactor_temp
        ) / tau_r

        condenser_inlet = inlets["condenser"]
        effluent_total = flows["effluent"].sum(axis=1)
        nominal_sep_driving = float(INTERNAL["separator_temp_nominal"]) - float(
            INTERNAL["condenser_cw_inlet_nominal"]
        )
        cooling_ratio = np.maximum(effective[:, 10] / self._xmv_nominal[10], 0.05)
        separator_target = condenser_inlet + nominal_sep_driving * (
            effluent_total / self._effluent_nominal
        ) / np.power(cooling_ratio, 0.6)
        tau_s = float(INTERNAL["separator_temp_tau"])
        state.separator_temp = state.separator_temp + dt * (
            separator_target - state.separator_temp
        ) / tau_s

        steam = flows["steam"]
        f10_total = flows["f10"].sum(axis=1)
        stripper_target = (
            float(INTERNAL["stripper_temp_nominal"])
            + 25.0 * (steam / float(INTERNAL["steam_nominal"]) - 1.0)
            - 12.0 * (f10_total / self._f10_nominal - 1.0)
        )
        tau_c = float(INTERNAL["stripper_temp_tau"])
        state.stripper_temp = state.stripper_temp + dt * (
            stripper_target - state.stripper_temp
        ) / tau_c

        tau_cw = float(INTERNAL["cw_outlet_tau"])
        nominal_rise = float(INTERNAL["reactor_cw_outlet_nominal"]) - float(
            INTERNAL["reactor_cw_inlet_nominal"]
        )
        reactor_cw_target = reactor_inlet + nominal_rise * (
            (state.reactor_temp - reactor_inlet) / nominal_driving
        ) * np.power(self._xmv_nominal[9] / np.maximum(effective[:, 9], 5.0), 0.8)
        state.reactor_cw_outlet = state.reactor_cw_outlet + dt * (
            reactor_cw_target - state.reactor_cw_outlet
        ) / tau_cw

        nominal_cond_rise = float(INTERNAL["separator_cw_outlet_nominal"]) - float(
            INTERNAL["condenser_cw_inlet_nominal"]
        )
        condenser_cw_target = condenser_inlet + nominal_cond_rise * (
            (state.separator_temp - condenser_inlet) / nominal_sep_driving
        ) * np.power(self._xmv_nominal[10] / np.maximum(effective[:, 10], 5.0), 0.8)
        state.separator_cw_outlet = state.separator_cw_outlet + dt * (
            condenser_cw_target - state.separator_cw_outlet
        ) / tau_cw

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _composition_percent_batch(
        self, vectors: np.ndarray, nominal_fraction: np.ndarray, published: np.ndarray
    ) -> np.ndarray:
        """Row-wise mirror of :meth:`TEPlant._composition_percent`."""
        total = np.maximum(vectors.sum(axis=1), 1e-9)
        fraction = vectors / total[:, None]
        scale = np.where(
            nominal_fraction > 1e-9,
            published / np.maximum(nominal_fraction, 1e-9),
            0.0,
        )
        return fraction * scale

    def measure(self, noisy: bool = True) -> np.ndarray:
        """Per-row sensor vectors, ``(B, 41)`` (mirrors :meth:`TEPlant.measure`)."""
        flows = self._last_flows
        state = self.state
        n_rows = state.n_rows
        xmeas = np.zeros((n_rows, 41))

        feed1_total = flows["feed1"].sum(axis=1)
        feed2_total = flows["feed2"].sum(axis=1)
        feed3_total = flows["feed3"].sum(axis=1)
        feed4_total = flows["feed4"].sum(axis=1)
        reactor_in = flows["reactor_in"]
        reactor_feed_total = reactor_in.sum(axis=1)
        purge_total = flows["purge_total"]
        f10_total = flows["f10"].sum(axis=1)
        f11_total = flows["f11"].sum(axis=1)
        steam = flows["steam"]

        reactor_pressure = state.reactor_pressure_kpa
        separator_pressure = state.separator_pressure_kpa

        xmeas[:, 0] = 0.25052 * feed1_total / float(INTERNAL["feed1_nominal"])
        xmeas[:, 1] = 3664.0 * feed2_total / float(INTERNAL["feed2_nominal"])
        xmeas[:, 2] = 4509.3 * feed3_total / float(INTERNAL["feed3_nominal"])
        xmeas[:, 3] = 9.3477 * feed4_total / float(INTERNAL["feed4_nominal"])
        xmeas[:, 4] = 26.902 * state.recycle_flow / self._recycle_nominal
        xmeas[:, 5] = 42.339 * reactor_feed_total / self._reactor_feed_nominal
        xmeas[:, 6] = reactor_pressure
        xmeas[:, 7] = state.reactor_level_percent
        xmeas[:, 8] = state.reactor_temp
        xmeas[:, 9] = 0.33712 * purge_total / self._purge_nominal
        xmeas[:, 10] = state.separator_temp
        xmeas[:, 11] = state.separator_level_percent
        xmeas[:, 12] = separator_pressure
        xmeas[:, 13] = 25.160 * f10_total / self._f10_nominal
        xmeas[:, 14] = state.stripper_level_percent
        xmeas[:, 15] = 3102.2 * (
            0.5 + 0.5 * separator_pressure / self._sep_pressure_nominal
        )
        xmeas[:, 16] = 22.949 * f11_total / self._f11_nominal
        xmeas[:, 17] = state.stripper_temp
        xmeas[:, 18] = steam
        xmeas[:, 19] = 341.43 * (state.recycle_flow / self._recycle_nominal) * (
            reactor_pressure / self._pressure_nominal
        )
        xmeas[:, 20] = state.reactor_cw_outlet
        xmeas[:, 21] = state.separator_cw_outlet

        stream6_published = np.concatenate([self._xmeas_nominal[22:28], np.zeros(2)])
        stream6 = self._composition_percent_batch(
            reactor_in, self._stream6_nominal_frac, stream6_published
        )
        xmeas[:, 22:28] = stream6[:, :6]

        purge_fraction = self._composition_percent_batch(
            flows["vapor_fraction"], self._purge_nominal_frac, self._xmeas_nominal[28:36]
        )
        xmeas[:, 28:36] = purge_fraction

        product_fraction = self._composition_percent_batch(
            state.stripper_liquid,
            self._product_nominal_frac,
            np.concatenate([np.zeros(3), self._xmeas_nominal[36:41]]),
        )
        xmeas[:, 36:41] = product_fraction[:, 3:]

        if noisy:
            noise = np.empty((n_rows, xmeas.shape[1]))
            for row in range(n_rows):
                noise[row] = self._noise_streams[row].take_row()
            noisy_values = xmeas + noise * self._noise_stds
            return self._xmeas_registry.clip(noisy_values)
        return self._xmeas_registry.clip(xmeas)

    # ------------------------------------------------------------------
    # Scalar PlantModel methods that do not apply to a batch
    # ------------------------------------------------------------------
    def step(self, manipulated, dt_hours, disturbances=None):  # pragma: no cover
        raise NotImplementedError("use step_batch with a BatchIdv")
