"""State vector of the reduced-order Tennessee-Eastman model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.te.constants import COMPONENTS, INTERNAL

__all__ = ["TEState", "BatchTEState"]

_LIGHTS = ("A", "B", "C")
_HEAVIES = ("D", "E", "F", "G", "H")


def _component_vector(values: Dict[str, float]) -> np.ndarray:
    """Expand a sparse ``{component: moles}`` mapping into an 8-vector."""
    vector = np.zeros(len(COMPONENTS))
    for component, amount in values.items():
        vector[COMPONENTS.index(component)] = float(amount)
    return vector


@dataclass
class TEState:
    """Dynamic state of the plant.

    Molar inventories are 8-vectors ordered as :data:`repro.te.constants.COMPONENTS`
    (A, B, C, D, E, F, G, H); entries that are structurally zero for a vessel
    (e.g. heavies in the reactor vapour) simply stay at zero.

    Attributes
    ----------
    reactor_vapor / reactor_liquid:
        Vapour (A-C) and liquid (D-H) inventories of the reactor, kmol.
    separator_vapor / separator_liquid:
        Inventories of the vapour-liquid separator, kmol.
    stripper_liquid:
        Liquid inventory of the product stripper, kmol.
    reactor_temp / separator_temp / stripper_temp:
        Vessel temperatures, deg C.
    reactor_cw_outlet / separator_cw_outlet:
        Cooling-water outlet temperatures, deg C.
    recycle_flow:
        Compressor recycle flow (kmol/h), modelled with a first-order lag.
    feed1_pressure_factor / feed4_composition_shift / cw_inlet_shift:
        Slow ambient random-walk states of the added randomness model.
    time_hours:
        Simulation clock.
    """

    reactor_vapor: np.ndarray
    reactor_liquid: np.ndarray
    separator_vapor: np.ndarray
    separator_liquid: np.ndarray
    stripper_liquid: np.ndarray
    reactor_temp: float
    separator_temp: float
    stripper_temp: float
    reactor_cw_outlet: float
    separator_cw_outlet: float
    recycle_flow: float
    feed1_pressure_factor: float = 1.0
    feed4_composition_shift: float = 0.0
    cw_inlet_shift: float = 0.0
    kinetics_drift: float = 0.0
    time_hours: float = 0.0

    @classmethod
    def nominal(cls) -> "TEState":
        """The base-case operating point of Downs & Vogel."""
        return cls(
            reactor_vapor=_component_vector(INTERNAL["reactor_vapor_nominal"]),
            reactor_liquid=_component_vector(INTERNAL["reactor_liquid_nominal"]),
            separator_vapor=_component_vector(INTERNAL["separator_vapor_nominal"]),
            separator_liquid=_component_vector(INTERNAL["separator_liquid_nominal"]),
            stripper_liquid=_component_vector(INTERNAL["stripper_liquid_nominal"]),
            reactor_temp=float(INTERNAL["reactor_temp_nominal"]),
            separator_temp=float(INTERNAL["separator_temp_nominal"]),
            stripper_temp=float(INTERNAL["stripper_temp_nominal"]),
            reactor_cw_outlet=float(INTERNAL["reactor_cw_outlet_nominal"]),
            separator_cw_outlet=float(INTERNAL["separator_cw_outlet_nominal"]),
            recycle_flow=float(INTERNAL["recycle_nominal"]),
        )

    def copy(self) -> "TEState":
        """A deep copy of the state."""
        return TEState(
            reactor_vapor=self.reactor_vapor.copy(),
            reactor_liquid=self.reactor_liquid.copy(),
            separator_vapor=self.separator_vapor.copy(),
            separator_liquid=self.separator_liquid.copy(),
            stripper_liquid=self.stripper_liquid.copy(),
            reactor_temp=self.reactor_temp,
            separator_temp=self.separator_temp,
            stripper_temp=self.stripper_temp,
            reactor_cw_outlet=self.reactor_cw_outlet,
            separator_cw_outlet=self.separator_cw_outlet,
            recycle_flow=self.recycle_flow,
            feed1_pressure_factor=self.feed1_pressure_factor,
            feed4_composition_shift=self.feed4_composition_shift,
            cw_inlet_shift=self.cw_inlet_shift,
            kinetics_drift=self.kinetics_drift,
            time_hours=self.time_hours,
        )

    # -- derived quantities --------------------------------------------
    @property
    def reactor_level_percent(self) -> float:
        """Reactor liquid level, % of capacity."""
        capacity = float(INTERNAL["reactor_liquid_capacity"])
        return 100.0 * float(self.reactor_liquid.sum()) / capacity

    @property
    def separator_level_percent(self) -> float:
        """Separator liquid level, % of capacity."""
        capacity = float(INTERNAL["separator_liquid_capacity"])
        return 100.0 * float(self.separator_liquid.sum()) / capacity

    @property
    def stripper_level_percent(self) -> float:
        """Stripper liquid level, % of capacity."""
        capacity = float(INTERNAL["stripper_liquid_capacity"])
        return 100.0 * float(self.stripper_liquid.sum()) / capacity

    @property
    def reactor_pressure_kpa(self) -> float:
        """Reactor pressure (kPa gauge) from the vapour inventory and temperature."""
        nominal_moles = sum(INTERNAL["reactor_vapor_nominal"].values())
        nominal_temp_k = float(INTERNAL["reactor_temp_nominal"]) + 273.15
        moles = float(self.reactor_vapor.sum())
        temp_k = self.reactor_temp + 273.15
        nominal_pressure = float(INTERNAL["reactor_pressure_nominal"])
        return nominal_pressure * (moles / nominal_moles) * (temp_k / nominal_temp_k)

    @property
    def separator_pressure_kpa(self) -> float:
        """Separator pressure (kPa gauge) from the vapour inventory and temperature."""
        nominal_moles = sum(INTERNAL["separator_vapor_nominal"].values())
        nominal_temp_k = float(INTERNAL["separator_temp_nominal"]) + 273.15
        moles = float(self.separator_vapor.sum())
        temp_k = self.separator_temp + 273.15
        nominal_pressure = float(INTERNAL["separator_pressure_nominal"])
        return nominal_pressure * (moles / nominal_moles) * (temp_k / nominal_temp_k)

    def clip_nonnegative(self) -> None:
        """Clamp all molar inventories to be non-negative (numerical guard)."""
        np.clip(self.reactor_vapor, 0.0, None, out=self.reactor_vapor)
        np.clip(self.reactor_liquid, 0.0, None, out=self.reactor_liquid)
        np.clip(self.separator_vapor, 0.0, None, out=self.separator_vapor)
        np.clip(self.separator_liquid, 0.0, None, out=self.separator_liquid)
        np.clip(self.stripper_liquid, 0.0, None, out=self.stripper_liquid)


@dataclass
class BatchTEState:
    """Dynamic state of ``B`` independent plants, stored row-wise.

    The molar inventories become ``(B, 8)`` arrays and every scalar state of
    :class:`TEState` becomes a ``(B,)`` array; the simulation clock stays a
    single scalar because batched runs advance in lockstep.  Each derived
    quantity applies exactly the arithmetic of the corresponding
    :class:`TEState` property as elementwise ufuncs, which is what anchors
    the batched backend's bitwise equivalence to the serial simulator.
    """

    reactor_vapor: np.ndarray
    reactor_liquid: np.ndarray
    separator_vapor: np.ndarray
    separator_liquid: np.ndarray
    stripper_liquid: np.ndarray
    reactor_temp: np.ndarray
    separator_temp: np.ndarray
    stripper_temp: np.ndarray
    reactor_cw_outlet: np.ndarray
    separator_cw_outlet: np.ndarray
    recycle_flow: np.ndarray
    feed1_pressure_factor: np.ndarray
    feed4_composition_shift: np.ndarray
    cw_inlet_shift: np.ndarray
    kinetics_drift: np.ndarray
    time_hours: float = 0.0

    #: Names of the per-row array fields (everything except the clock).
    ARRAY_FIELDS = (
        "reactor_vapor",
        "reactor_liquid",
        "separator_vapor",
        "separator_liquid",
        "stripper_liquid",
        "reactor_temp",
        "separator_temp",
        "stripper_temp",
        "reactor_cw_outlet",
        "separator_cw_outlet",
        "recycle_flow",
        "feed1_pressure_factor",
        "feed4_composition_shift",
        "cw_inlet_shift",
        "kinetics_drift",
    )

    @classmethod
    def nominal(cls, n_rows: int) -> "BatchTEState":
        """``n_rows`` copies of the Downs & Vogel base case."""
        single = TEState.nominal()

        def tile_vec(vector: np.ndarray) -> np.ndarray:
            return np.tile(np.asarray(vector, dtype=float), (n_rows, 1))

        def fill(value: float) -> np.ndarray:
            return np.full(n_rows, float(value))

        return cls(
            reactor_vapor=tile_vec(single.reactor_vapor),
            reactor_liquid=tile_vec(single.reactor_liquid),
            separator_vapor=tile_vec(single.separator_vapor),
            separator_liquid=tile_vec(single.separator_liquid),
            stripper_liquid=tile_vec(single.stripper_liquid),
            reactor_temp=fill(single.reactor_temp),
            separator_temp=fill(single.separator_temp),
            stripper_temp=fill(single.stripper_temp),
            reactor_cw_outlet=fill(single.reactor_cw_outlet),
            separator_cw_outlet=fill(single.separator_cw_outlet),
            recycle_flow=fill(single.recycle_flow),
            feed1_pressure_factor=fill(single.feed1_pressure_factor),
            feed4_composition_shift=fill(single.feed4_composition_shift),
            cw_inlet_shift=fill(single.cw_inlet_shift),
            kinetics_drift=fill(single.kinetics_drift),
        )

    @property
    def n_rows(self) -> int:
        """Number of plants in the batch."""
        return self.reactor_vapor.shape[0]

    def take(self, indices: np.ndarray) -> None:
        """Keep only the given rows (compaction after trips / early stops)."""
        for name in self.ARRAY_FIELDS:
            setattr(self, name, getattr(self, name)[indices])

    # -- derived quantities (row-wise mirrors of TEState) ---------------
    @property
    def reactor_level_percent(self) -> np.ndarray:
        """Reactor liquid level, % of capacity, per row."""
        capacity = float(INTERNAL["reactor_liquid_capacity"])
        return 100.0 * self.reactor_liquid.sum(axis=1) / capacity

    @property
    def separator_level_percent(self) -> np.ndarray:
        """Separator liquid level, % of capacity, per row."""
        capacity = float(INTERNAL["separator_liquid_capacity"])
        return 100.0 * self.separator_liquid.sum(axis=1) / capacity

    @property
    def stripper_level_percent(self) -> np.ndarray:
        """Stripper liquid level, % of capacity, per row."""
        capacity = float(INTERNAL["stripper_liquid_capacity"])
        return 100.0 * self.stripper_liquid.sum(axis=1) / capacity

    @property
    def reactor_pressure_kpa(self) -> np.ndarray:
        """Reactor pressure (kPa gauge) per row."""
        nominal_moles = sum(INTERNAL["reactor_vapor_nominal"].values())
        nominal_temp_k = float(INTERNAL["reactor_temp_nominal"]) + 273.15
        moles = self.reactor_vapor.sum(axis=1)
        temp_k = self.reactor_temp + 273.15
        nominal_pressure = float(INTERNAL["reactor_pressure_nominal"])
        return nominal_pressure * (moles / nominal_moles) * (temp_k / nominal_temp_k)

    @property
    def separator_pressure_kpa(self) -> np.ndarray:
        """Separator pressure (kPa gauge) per row."""
        nominal_moles = sum(INTERNAL["separator_vapor_nominal"].values())
        nominal_temp_k = float(INTERNAL["separator_temp_nominal"]) + 273.15
        moles = self.separator_vapor.sum(axis=1)
        temp_k = self.separator_temp + 273.15
        nominal_pressure = float(INTERNAL["separator_pressure_nominal"])
        return nominal_pressure * (moles / nominal_moles) * (temp_k / nominal_temp_k)

    def clip_nonnegative(self) -> None:
        """Clamp all molar inventories to be non-negative (numerical guard)."""
        np.clip(self.reactor_vapor, 0.0, None, out=self.reactor_vapor)
        np.clip(self.reactor_liquid, 0.0, None, out=self.reactor_liquid)
        np.clip(self.separator_vapor, 0.0, None, out=self.separator_vapor)
        np.clip(self.separator_liquid, 0.0, None, out=self.separator_liquid)
        np.clip(self.stripper_liquid, 0.0, None, out=self.stripper_liquid)
