"""CSV export of figure data (series and bar charts)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence, Union

import numpy as np

from repro.common.exceptions import DataShapeError

__all__ = ["export_series_csv", "export_bars_csv"]

_PathLike = Union[str, Path]


def export_series_csv(
    path: _PathLike,
    columns: Mapping[str, Sequence[float]],
) -> Path:
    """Write named, equally-long series as CSV columns and return the path."""
    if not columns:
        raise DataShapeError("at least one series is required")
    arrays = {name: np.asarray(values, dtype=float).ravel() for name, values in columns.items()}
    lengths = {array.shape[0] for array in arrays.values()}
    if len(lengths) != 1:
        raise DataShapeError("all series must have the same length")
    length = lengths.pop()

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(arrays))
        for row_index in range(length):
            writer.writerow([repr(float(arrays[name][row_index])) for name in arrays])
    return path


def export_bars_csv(
    path: _PathLike,
    labels: Sequence[str],
    values: Sequence[float],
) -> Path:
    """Write an oMEDA-style bar chart (label, value) as CSV and return the path."""
    values = np.asarray(values, dtype=float).ravel()
    labels = [str(label) for label in labels]
    if len(labels) != values.shape[0]:
        raise DataShapeError("labels and values must have the same length")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["variable", "contribution"])
        for label, value in zip(labels, values):
            writer.writerow([label, repr(float(value))])
    return path
