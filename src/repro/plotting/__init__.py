"""Text-based rendering and export of charts (no plotting backend required)."""

from repro.plotting.ascii import render_control_chart, render_bar_chart, render_series
from repro.plotting.export import export_series_csv, export_bars_csv

__all__ = [
    "render_control_chart",
    "render_bar_chart",
    "render_series",
    "export_series_csv",
    "export_bars_csv",
]
