"""ASCII rendering of control charts, time series and oMEDA bar charts.

Matplotlib is not available in the reproduction environment, so the figures
are rendered as plain text: good enough to eyeball the shape of a control
chart or an oMEDA diagnosis directly in a terminal or a log file.  The
numerical figure data itself is produced by :mod:`repro.experiments.figures`
and can be exported to CSV with :mod:`repro.plotting.export`.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.common.validation import as_1d_array

__all__ = ["render_series", "render_control_chart", "render_bar_chart"]


def render_series(
    values,
    width: int = 72,
    height: int = 16,
    title: str = "",
    markers: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a numeric series as an ASCII line chart.

    Parameters
    ----------
    values:
        The series to draw (downsampled to ``width`` columns).
    markers:
        Optional named horizontal reference lines (e.g. control limits).
    """
    series = as_1d_array(values, "series")
    markers = dict(markers or {})
    low = float(min(series.min(), *markers.values())) if markers else float(series.min())
    high = float(max(series.max(), *markers.values())) if markers else float(series.max())
    if high == low:
        high = low + 1.0

    # Downsample the series to the requested width.
    columns = min(width, series.shape[0])
    indices = np.linspace(0, series.shape[0] - 1, columns).round().astype(int)
    sampled = series[indices]

    def to_row(value: float) -> int:
        fraction = (value - low) / (high - low)
        return int(round((height - 1) * (1.0 - fraction)))

    grid = [[" "] * columns for _ in range(height)]
    for name, level in markers.items():
        row = to_row(level)
        for column in range(columns):
            grid[row][column] = "-"
    for column, value in enumerate(sampled):
        grid[to_row(float(value))][column] = "*"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"max = {high:.4g}")
    lines.extend("".join(row) for row in grid)
    lines.append(f"min = {low:.4g}")
    if markers:
        lines.append(
            "reference lines: "
            + ", ".join(f"{name} = {level:.4g}" for name, level in markers.items())
        )
    return "\n".join(lines)


def render_control_chart(
    values,
    limits: Mapping[float, float],
    title: str = "Control chart",
    width: int = 72,
    height: int = 16,
) -> str:
    """Render a monitoring statistic with its control limits (Figure 1 style)."""
    markers = {f"{100 * confidence:.0f}%": limit for confidence, limit in limits.items()}
    return render_series(values, width=width, height=height, title=title, markers=markers)


def render_bar_chart(
    labels: Sequence[str],
    values,
    title: str = "",
    width: int = 48,
    highlight_top: int = 3,
) -> str:
    """Render an oMEDA-style signed bar chart, one row per variable.

    Bars extend left (negative) or right (positive) of a centre line; the
    ``highlight_top`` largest |values| are marked with ``<<`` so the dominant
    variables stand out like the labels in the paper's figures.
    """
    bars = as_1d_array(values, "bar values")
    labels = [str(label) for label in labels]
    if len(labels) != bars.shape[0]:
        raise ValueError("labels and values must have the same length")
    scale = float(np.max(np.abs(bars))) if bars.size else 1.0
    if scale == 0:
        scale = 1.0
    half = width // 2
    top_indices = set(np.argsort(-np.abs(bars))[:highlight_top].tolist())

    lines = [title] if title else []
    for index, (label, value) in enumerate(zip(labels, bars)):
        magnitude = int(round(abs(value) / scale * half))
        if value >= 0:
            bar = " " * half + "|" + "#" * magnitude
        else:
            bar = " " * (half - magnitude) + "#" * magnitude + "|"
        marker = "  <<" if index in top_indices and abs(value) > 0 else ""
        lines.append(f"{label:>12} {bar:<{width + 1}} {value:+.3g}{marker}")
    return "\n".join(lines)
