"""Declarative response policies: from confirmed alarm to recovery action.

The policy engine of :mod:`repro.response`.  A :class:`ResponsePolicy` is
the ``[response]`` section of a campaign spec: an ordered list of
:class:`ActionSpec` rules, each matching a confirmed
:class:`~repro.live.alarms.AlarmEvent` plus its on-alarm oMEDA
:class:`~repro.anomaly.diagnosis.DiagnosisSummary` (which view raised, which
chart fired, the diagnosed anomaly class, the top-contributing variables)
and naming one recovery action from the catalog:

``fallback_gains``
    Swap the running controller for a copy with every loop gain scaled by
    ``gain_factor`` — a conservative fallback tuning that trades
    performance for stability margin.
``quarantine_channel``
    Clear the attack schedule of the sensor or actuator channel
    (``channel``), re-routing the loop around the tampered path.
``escalate_sensitivity``
    Scale both views' D/Q detection limits by ``limit_factor``
    (< 1 tightens them), so the monitor confirms follow-up deviations
    faster.
``shed_sensor``
    Hold one measured variable (``sensor``) at its last transmitted value,
    removing a distrusted sensor from the loop's live inputs.

Rules are evaluated in order and the first match wins; cooldowns
(per rule or policy-wide) and a per-run action budget (``max_actions``)
bound how often the runner may intervene.  Like every other config
section the policy round-trips through TOML/JSON mappings bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.anomaly.diagnosis import AnomalyClass, DiagnosisSummary
from repro.common.config import (
    _as_bool,
    _as_int,
    _as_sequence,
    _build_from_mapping,
    _mapping_of,
    _opt,
)
from repro.common.exceptions import ConfigurationError
from repro.live.alarms import AlarmEvent

__all__ = ["ACTIONS", "ActionSpec", "ResponsePolicy"]

#: The action catalog, in documentation order.
ACTIONS: Tuple[str, ...] = (
    "fallback_gains",
    "quarantine_channel",
    "escalate_sensitivity",
    "shed_sensor",
)

_VIEWS = ("controller", "process")
_CHARTS = ("D", "Q", "D+Q")
_CHANNELS = ("sensors", "actuators")
_CLASSIFICATIONS = tuple(kind.value for kind in AnomalyClass)


@dataclass(frozen=True)
class ActionSpec:
    """One declarative response rule: match criteria plus an action.

    Attributes
    ----------
    action:
        One of :data:`ACTIONS`.
    view / chart / classification / variables:
        Match criteria, all optional (``None`` / empty matches anything):
        the data view whose alarm raised (``"controller"`` /
        ``"process"``), the chart that fired (``"D"`` / ``"Q"`` matches a
        joint ``"D+Q"`` raise too; ``"D+Q"`` only the joint one), the
        diagnosed :class:`~repro.anomaly.diagnosis.AnomalyClass` value,
        and variable names of which at least one must be among the oMEDA
        snapshot's top contributors.
    gain_factor:
        ``fallback_gains``: multiplier applied to every loop's ``kc``.
    limit_factor:
        ``escalate_sensitivity``: multiplier applied to both views' D/Q
        detection limits (< 1 tightens the monitor).
    channel:
        ``quarantine_channel``: which channel to clear (``"sensors"`` or
        ``"actuators"``).
    sensor:
        ``shed_sensor``: the variable to hold, e.g. ``"XMEAS(1)"`` or
        ``"XMV(3)"``.
    cooldown_samples:
        Per-rule refire cooldown; ``None`` uses the policy-wide default.
    """

    action: str = ""
    view: Optional[str] = None
    chart: Optional[str] = None
    classification: Optional[str] = None
    variables: Tuple[str, ...] = ()
    gain_factor: float = 0.5
    limit_factor: float = 0.8
    channel: str = "sensors"
    sensor: Optional[str] = None
    cooldown_samples: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigurationError(
                f"rule action must be one of {list(ACTIONS)}, got {self.action!r}"
            )
        if self.view is not None and self.view not in _VIEWS:
            raise ConfigurationError(
                f"rule view must be one of {list(_VIEWS)} or absent, "
                f"got {self.view!r}"
            )
        if self.chart is not None and self.chart not in _CHARTS:
            raise ConfigurationError(
                f"rule chart must be one of {list(_CHARTS)} or absent, "
                f"got {self.chart!r}"
            )
        if (
            self.classification is not None
            and self.classification not in _CLASSIFICATIONS
        ):
            raise ConfigurationError(
                f"rule classification must be one of {list(_CLASSIFICATIONS)} "
                f"or absent, got {self.classification!r}"
            )
        object.__setattr__(
            self, "variables", tuple(str(name) for name in self.variables)
        )
        if self.gain_factor <= 0:
            raise ConfigurationError("gain_factor must be positive")
        if self.limit_factor <= 0:
            raise ConfigurationError("limit_factor must be positive")
        if self.channel not in _CHANNELS:
            raise ConfigurationError(
                f"rule channel must be one of {list(_CHANNELS)}, "
                f"got {self.channel!r}"
            )
        if self.action == "shed_sensor" and not self.sensor:
            raise ConfigurationError(
                "a shed_sensor rule must name the sensor to shed"
            )
        if self.cooldown_samples is not None and self.cooldown_samples < 0:
            raise ConfigurationError("cooldown_samples must be >= 0 or None")

    def matches(
        self,
        view: str,
        event: AlarmEvent,
        summary: Optional[DiagnosisSummary],
        top_variables: int = 3,
    ) -> bool:
        """Whether this rule matches an alarm raised on ``view``.

        ``summary`` is the on-alarm oMEDA snapshot (``None`` when no
        diagnosis is available yet); rules constraining ``classification``
        or ``variables`` never match without one.
        """
        if self.view is not None and view != self.view:
            return False
        if self.chart is not None:
            if self.chart == "D+Q":
                if event.chart != "D+Q":
                    return False
            elif self.chart not in event.chart.split("+"):
                return False
        if self.classification is not None:
            if summary is None:
                return False
            if summary.classification.value != self.classification:
                return False
        if self.variables:
            if summary is None:
                return False
            implicated = set()
            for names in summary.implicated_variables(top_variables).values():
                implicated.update(names)
            if not implicated.intersection(self.variables):
                return False
        return True

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON/TOML-ready mapping of this rule."""
        return _mapping_of(self, floats=("gain_factor", "limit_factor"))

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ActionSpec":
        """Build from a mapping, rejecting unknown keys and coercing types."""
        return _build_from_mapping(
            cls,
            mapping,
            {
                "action": str,
                "view": _opt(str),
                "chart": _opt(str),
                "classification": _opt(str),
                "variables": lambda value: tuple(
                    str(name) for name in _as_sequence(value, "rule variables")
                ),
                "gain_factor": float,
                "limit_factor": float,
                "channel": str,
                "sensor": _opt(str),
                "cooldown_samples": _opt(_as_int),
            },
            "response rule",
        )


@dataclass(frozen=True)
class ResponsePolicy:
    """The ``[response]`` section of a campaign spec: closed-loop response.

    Attributes
    ----------
    enabled:
        Whether confirmed alarms trigger recovery actions.  A disabled (or
        rule-less) policy makes the response runner a pure observer: run
        results are bitwise-identical to a response-free run.
    rules:
        Ordered :class:`ActionSpec` list; the first matching rule fires
        (``[[response.rules]]`` tables in TOML).
    cooldown_samples:
        Default per-rule refire cooldown, in samples.
    max_actions:
        Per-run action budget; once spent, further alarms are only logged.
    hold_samples:
        Recovery verification window: after an action fires, the plant
        counts as recovered once both views' D and Q statistics stay at or
        under their detection limits for this many consecutive samples.
    match_top_variables:
        How many top oMEDA contributors per view a rule's ``variables``
        criterion is matched against.
    """

    enabled: bool = False
    rules: Tuple[ActionSpec, ...] = ()
    cooldown_samples: int = 30
    max_actions: int = 3
    hold_samples: int = 12
    match_top_variables: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, ActionSpec):
                raise ConfigurationError(
                    f"response rules must be ActionSpec instances, got {rule!r}"
                )
        if self.cooldown_samples < 0:
            raise ConfigurationError("cooldown_samples must be >= 0")
        if self.max_actions < 0:
            raise ConfigurationError("max_actions must be >= 0")
        if self.hold_samples < 1:
            raise ConfigurationError("hold_samples must be >= 1")
        if self.match_top_variables < 1:
            raise ConfigurationError("match_top_variables must be >= 1")

    @property
    def is_default(self) -> bool:
        """Whether this section matches the defaults (and can be omitted)."""
        return self == ResponsePolicy()

    @property
    def is_armed(self) -> bool:
        """Whether the runner may ever fire an action under this policy."""
        return self.enabled and bool(self.rules) and self.max_actions > 0

    def first_match(
        self,
        view: str,
        event: AlarmEvent,
        summary: Optional[DiagnosisSummary],
    ) -> Optional[Tuple[int, ActionSpec]]:
        """The first rule matching this alarm, as ``(rule_index, rule)``."""
        for index, rule in enumerate(self.rules):
            if rule.matches(view, event, summary, self.match_top_variables):
                return index, rule
        return None

    def rule_cooldown(self, rule: ActionSpec) -> int:
        """The effective refire cooldown of one rule, in samples."""
        if rule.cooldown_samples is not None:
            return int(rule.cooldown_samples)
        return int(self.cooldown_samples)

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON/TOML-ready mapping of this policy."""
        mapping: Dict[str, Any] = {
            "enabled": self.enabled,
            "cooldown_samples": int(self.cooldown_samples),
            "max_actions": int(self.max_actions),
            "hold_samples": int(self.hold_samples),
            "match_top_variables": int(self.match_top_variables),
        }
        if self.rules:
            mapping["rules"] = [rule.to_mapping() for rule in self.rules]
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ResponsePolicy":
        """Build from a mapping, rejecting unknown keys and coercing types."""
        return _build_from_mapping(
            cls,
            mapping,
            {
                "enabled": _as_bool,
                "rules": lambda value: tuple(
                    ActionSpec.from_mapping(item)
                    for item in _as_sequence(value, "response.rules")
                ),
                "cooldown_samples": _as_int,
                "max_actions": _as_int,
                "hold_samples": _as_int,
                "match_top_variables": _as_int,
            },
            "response",
        )
