"""The action runner: applies policy actions to a live simulation.

:class:`ResponseRunner` is a :class:`~repro.process.interfaces.StepObserver`
that rides *behind* a :class:`~repro.live.observer.LiveRunObserver` feeding
the same :class:`~repro.live.monitor.LiveMonitor`.  Each sample it checks
the monitor's alarm managers for newly raised alarms, matches them against
its :class:`~repro.response.policy.ResponsePolicy`, and applies the first
matching rule's action through the simulator's existing mutation seams —
the :class:`~repro.process.simulator.ClosedLoopSimulator` re-reads its
controller, channels and safety monitor freshly at every integration
sub-step, so a swap made in ``on_sample`` takes effect at the next sample.

Everything is deterministic: the same seed produces the same alarms, hence
the same actions at the same step indices.  With a disabled (or rule-less)
policy the runner never mutates anything and the run is bitwise-identical
to one without it.

The runner needs the simulator it rides in; :meth:`ResponseRunner.bind` is
shaped as an observer factory for
:func:`~repro.experiments.runner.run_scenario`::

    runner = ResponseRunner(monitor, policy)
    run_scenario(scenario, simulation,
                 observers=[LiveRunObserver(monitor)],
                 observer_factories=[runner.bind])
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.common.exceptions import ConfigurationError
from repro.control.te_controller import TEDecentralizedController
from repro.live.monitor import LiveMonitor
from repro.network.attacks import AttackSchedule, DoSAttack
from repro.obs.logs import get_logger
from repro.process.interfaces import StepObserver, StepSample
from repro.process.simulator import ClosedLoopSimulator
from repro.response.policy import ActionSpec, ResponsePolicy
from repro.response.verify import (
    ActionRecord,
    RecoveryTracker,
    ResponseReport,
    build_response_report,
)
from repro.te.constants import XMEAS_NAMES, XMV_NAMES

__all__ = ["ResponseRunner", "apply_action"]

_LOG = get_logger("response")


def apply_action(
    simulator: ClosedLoopSimulator,
    monitor: LiveMonitor,
    rule: ActionSpec,
    time_hours: float,
) -> str:
    """Apply one rule's action through the simulator/monitor seams.

    Returns a human-readable description of what changed.  The mutation is
    visible from the next integration sub-step on — the sample that
    triggered the action is already recorded.
    """
    if rule.action == "fallback_gains":
        controller = simulator.controller
        loops = [
            dataclasses.replace(
                loop.definition, kc=loop.definition.kc * rule.gain_factor
            )
            for loop in controller.loops
        ]
        simulator.controller = TEDecentralizedController(loops=loops)
        return f"controller loop gains scaled x{rule.gain_factor:g}"
    if rule.action == "quarantine_channel":
        channel = (
            simulator.sensor_channel
            if rule.channel == "sensors"
            else simulator.actuator_channel
        )
        n_cleared = len(channel.attacks.attacks)
        channel.attacks = AttackSchedule.none()
        return (
            f"quarantined {channel.name} channel "
            f"({n_cleared} attack(s) cleared)"
        )
    if rule.action == "escalate_sensitivity":
        for view in monitor.views.values():
            view.d_limit *= rule.limit_factor
            view.q_limit *= rule.limit_factor
        return f"detection limits scaled x{rule.limit_factor:g}"
    if rule.action == "shed_sensor":
        name = rule.sensor
        if name in XMEAS_NAMES:
            channel = simulator.sensor_channel
            target = XMEAS_NAMES.index(name) + 1
        elif name in XMV_NAMES:
            channel = simulator.actuator_channel
            target = XMV_NAMES.index(name) + 1
        else:
            raise ConfigurationError(
                f"shed_sensor: unknown variable {name!r} "
                "(expected an XMEAS(i) or XMV(i) name)"
            )
        channel.add_attack(DoSAttack(target, start_hour=float(time_hours)))
        return f"shed {name}: held at its last transmitted value"
    raise ConfigurationError(f"unknown action {rule.action!r}")


class ResponseRunner(StepObserver):
    """Step observer that turns confirmed alarms into recovery actions.

    Must be attached *after* a :class:`~repro.live.observer.LiveRunObserver`
    feeding the same monitor, so every sample is scored before the runner
    inspects the alarm state (``on_run_start`` / ``on_sample`` verify
    this).  Actions fire only on alarms raised at or after the monitored
    anomaly onset (``monitor.detected``), use the on-alarm oMEDA snapshot
    for rule matching, and respect the policy's cooldowns and per-run
    budget.  The runner never stops a run.
    """

    def __init__(
        self,
        monitor: LiveMonitor,
        policy: ResponsePolicy,
        simulator: Optional[ClosedLoopSimulator] = None,
    ):
        self.monitor = monitor
        self.policy = policy
        self.simulator = simulator
        self._actions: List[ActionRecord] = []
        self._last_fired: Dict[int, int] = {}
        self._was_detected = False
        self._tracker = RecoveryTracker(monitor, policy.hold_samples)
        self._shutdown_time_hours: Optional[float] = None
        self._shutdown_reason: Optional[str] = None

    def bind(self, simulator: ClosedLoopSimulator) -> Tuple["ResponseRunner"]:
        """Attach the simulator; usable as a ``run_scenario`` observer factory."""
        self.simulator = simulator
        return (self,)

    # ------------------------------------------------------------------
    @property
    def actions(self) -> Tuple[ActionRecord, ...]:
        """Every action applied so far, in firing order."""
        return tuple(self._actions)

    @property
    def tracker(self) -> RecoveryTracker:
        """The recovery verification state."""
        return self._tracker

    # ------------------------------------------------------------------
    def on_run_start(self, variable_names, config, metadata) -> None:
        if self.simulator is None:
            raise ConfigurationError(
                "ResponseRunner is not bound to a simulator — pass "
                "runner.bind through run_scenario's observer_factories "
                "(or set runner.simulator)"
            )
        self._actions = []
        self._last_fired = {}
        self._was_detected = False
        self._tracker = RecoveryTracker(self.monitor, self.policy.hold_samples)
        self._shutdown_time_hours = None
        self._shutdown_reason = None

    def on_sample(self, sample: StepSample) -> Optional[bool]:
        monitor = self.monitor
        if monitor.n_samples != sample.index + 1:
            raise ConfigurationError(
                "ResponseRunner must be attached after a LiveRunObserver "
                "feeding the same monitor (the sample reached the runner "
                "unscored)"
            )
        if not self.policy.is_armed:
            # A disabled (or rule-less) policy can never fire; skip the
            # bookkeeping so riding disarmed is as close to free as the
            # ordering guard allows.
            return None
        if not monitor.detected:
            # Pre-detection raises are false alarms and never trigger;
            # the recovery tracker only arms after the first action, which
            # needs a detection — nothing to fold in yet.
            return None
        just_detected = not self._was_detected
        self._was_detected = True
        triggers = []
        for view_name, view in monitor.views.items():
            raises = view.alarms.raise_events
            if not raises:
                continue
            last = raises[-1]
            if last.index == sample.index:
                # An alarm manager emits at most one transition per sample,
                # so a last raise stamped with the current index IS the new
                # raise of this sample.
                triggers.append((view_name, last))
            elif just_detected and view.alarms.active:
                # The alarm raised before the anomaly onset and was still
                # standing when the detection confirmed — the confirmation
                # itself is the trigger, matched against the standing raise.
                triggers.append((view_name, last))
        if triggers:
            summary = (
                monitor.snapshot.summarize()
                if monitor.snapshot is not None
                else None
            )
            for view_name, event in triggers:
                if len(self._actions) >= self.policy.max_actions:
                    break
                match = self.policy.first_match(view_name, event, summary)
                if match is None:
                    continue
                rule_index, rule = match
                last = self._last_fired.get(rule_index)
                cooldown = self.policy.rule_cooldown(rule)
                if last is not None and sample.index - last < cooldown:
                    continue
                detail = apply_action(
                    self.simulator, monitor, rule, sample.time_hours
                )
                self._last_fired[rule_index] = sample.index
                self._actions.append(
                    ActionRecord(
                        index=sample.index,
                        time_hours=float(sample.time_hours),
                        action=rule.action,
                        rule_index=rule_index,
                        view=view_name,
                        chart=event.chart,
                        detail=detail,
                    )
                )
                _LOG.info(
                    "action applied",
                    extra={
                        "action_id": len(self._actions) - 1,
                        "action": rule.action,
                        "rule": rule_index,
                        "view": view_name,
                        "chart": event.chart,
                        "sample": sample.index,
                        "time_hours": float(sample.time_hours),
                        "detail": detail,
                    },
                )
                self._tracker.arm(sample.index, sample.time_hours)
        self._tracker.update(sample.index, sample.time_hours)
        return None

    def on_run_end(self, shutdown_time_hours, shutdown_reason) -> None:
        self._shutdown_time_hours = (
            None if shutdown_time_hours is None else float(shutdown_time_hours)
        )
        self._shutdown_reason = shutdown_reason

    # ------------------------------------------------------------------
    def report(self) -> ResponseReport:
        """The per-run response verdict (see :mod:`repro.response.verify`)."""
        return build_response_report(
            self.monitor.report(),
            policy_enabled=self.policy.enabled,
            tracker=self._tracker,
            actions=self.actions,
            shutdown_time_hours=self._shutdown_time_hours,
            shutdown_reason=self._shutdown_reason,
        )
