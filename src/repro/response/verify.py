"""Recovery verification: did the action restore in-control operation?

After the :class:`~repro.response.runner.ResponseRunner` fires its first
action, :class:`RecoveryTracker` watches both monitor views and declares
the plant *recovered* once D and Q stay at or under their detection limits
for ``hold_samples`` consecutive samples.  :class:`ResponseReport` is the
per-run verdict: the underlying
:class:`~repro.live.monitor.LiveRunReport` plus the actions taken,
time-to-recovery, trip-avoided and residual-alarm-rate metrics — JSON-safe
and rebuildable bit-for-bit via ``to_mapping`` / ``from_mapping`` like
every other result object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.live.monitor import LiveMonitor, LiveRunReport, _opt_float

__all__ = [
    "ActionRecord",
    "RecoveryTracker",
    "ResponseReport",
    "build_response_report",
]


@dataclass(frozen=True)
class ActionRecord:
    """One action the runner applied, pinned to its sample.

    Attributes
    ----------
    index / time_hours:
        Sample at which the action fired (it takes effect at the next
        sample — the simulator re-reads its collaborators per sub-step).
    action:
        The :data:`~repro.response.policy.ACTIONS` entry that fired.
    rule_index:
        Position of the matching rule in the policy's rule list.
    view / chart:
        The alarm that triggered the rule: which view raised and which
        chart fired.
    detail:
        Human-readable description of what the action changed.
    """

    index: int
    time_hours: float
    action: str
    rule_index: int
    view: str
    chart: str
    detail: str = ""

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON-safe mapping of this record."""
        return {
            "index": int(self.index),
            "time_hours": float(self.time_hours),
            "action": self.action,
            "rule_index": int(self.rule_index),
            "view": self.view,
            "chart": self.chart,
            "detail": self.detail,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ActionRecord":
        """Rebuild a record from its :meth:`to_mapping` form."""
        return cls(
            index=int(mapping["index"]),
            time_hours=float(mapping["time_hours"]),
            action=str(mapping["action"]),
            rule_index=int(mapping["rule_index"]),
            view=str(mapping["view"]),
            chart=str(mapping["chart"]),
            detail=str(mapping.get("detail", "")),
        )


class RecoveryTracker:
    """Counts consecutive in-control samples after the first action fired.

    The tracker is armed by the first action; from then on every sample at
    which *both* views are in control (D and Q at or under their current
    detection limits) extends a streak, any violation resets it, and the
    sample completing a ``hold_samples``-long streak is the recovery
    point.  Escalated detection limits are honoured: the comparison uses
    whatever limits the views hold at each sample.
    """

    def __init__(self, monitor: LiveMonitor, hold_samples: int):
        self.monitor = monitor
        self.hold_samples = int(hold_samples)
        self.armed = False
        self.arm_index: Optional[int] = None
        self.arm_time_hours: Optional[float] = None
        self.recovery_index: Optional[int] = None
        self.recovery_time_hours: Optional[float] = None
        self._streak = 0

    def arm(self, index: int, time_hours: float) -> None:
        """Start verification at the sample where the first action fired."""
        if self.armed:
            return
        self.armed = True
        self.arm_index = int(index)
        self.arm_time_hours = float(time_hours)
        self._streak = 0

    @property
    def recovered(self) -> bool:
        """Whether the hold window has completed since the first action."""
        return self.recovery_index is not None

    @property
    def time_to_recovery_hours(self) -> Optional[float]:
        """Hours from the first action to the completed hold window."""
        if self.recovery_time_hours is None or self.arm_time_hours is None:
            return None
        return self.recovery_time_hours - self.arm_time_hours

    def update(self, index: int, time_hours: float) -> None:
        """Fold one sample in (call after the monitor has scored it)."""
        if not self.armed or self.recovered:
            return
        if all(view.in_control for view in self.monitor.views.values()):
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.hold_samples:
            self.recovery_index = int(index)
            self.recovery_time_hours = float(time_hours)


@dataclass(frozen=True)
class ResponseReport:
    """Everything one response-enabled run produced.

    Extends the live monitor's :class:`~repro.live.monitor.LiveRunReport`
    (kept whole under :attr:`live`) with the response verdict: the actions
    taken, whether and when the plant recovered, whether a safety trip was
    avoided, and the residual alarm rate after the first action.

    ``trip_avoided`` is three-valued: ``None`` when no action fired (there
    was nothing to avoid on the response's account), else whether the run
    finished without a safety shutdown.
    """

    live: LiveRunReport
    policy_enabled: bool = False
    hold_samples: int = 1
    actions: Tuple[ActionRecord, ...] = ()
    first_action_index: Optional[int] = None
    first_action_time_hours: Optional[float] = None
    recovered: bool = False
    recovery_index: Optional[int] = None
    recovery_time_hours: Optional[float] = None
    time_to_recovery_hours: Optional[float] = None
    residual_alarms: int = 0
    residual_alarm_rate: Optional[float] = None
    trip_avoided: Optional[bool] = None
    shutdown_time_hours: Optional[float] = None
    shutdown_reason: Optional[str] = None

    @property
    def n_actions(self) -> int:
        """How many actions fired during the run."""
        return len(self.actions)

    @property
    def responded(self) -> bool:
        """Whether at least one action fired."""
        return bool(self.actions)

    @property
    def detected(self) -> bool:
        """Whether the underlying live monitor confirmed a detection."""
        return self.live.detected

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON-safe mapping; every key is always present."""
        return {
            "live": self.live.to_mapping(),
            "policy_enabled": bool(self.policy_enabled),
            "hold_samples": int(self.hold_samples),
            "actions": [record.to_mapping() for record in self.actions],
            "first_action_index": (
                None
                if self.first_action_index is None
                else int(self.first_action_index)
            ),
            "first_action_time_hours": _opt_float(self.first_action_time_hours),
            "recovered": bool(self.recovered),
            "recovery_index": (
                None if self.recovery_index is None else int(self.recovery_index)
            ),
            "recovery_time_hours": _opt_float(self.recovery_time_hours),
            "time_to_recovery_hours": _opt_float(self.time_to_recovery_hours),
            "residual_alarms": int(self.residual_alarms),
            "residual_alarm_rate": _opt_float(self.residual_alarm_rate),
            "trip_avoided": self.trip_avoided,
            "shutdown_time_hours": _opt_float(self.shutdown_time_hours),
            "shutdown_reason": self.shutdown_reason,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ResponseReport":
        """Rebuild a report from its :meth:`to_mapping` form."""
        trip_avoided = mapping.get("trip_avoided")
        shutdown_reason = mapping.get("shutdown_reason")
        return cls(
            live=LiveRunReport.from_mapping(mapping["live"]),
            policy_enabled=bool(mapping.get("policy_enabled", False)),
            hold_samples=int(mapping.get("hold_samples", 1)),
            actions=tuple(
                ActionRecord.from_mapping(item)
                for item in mapping.get("actions", ())
            ),
            first_action_index=(
                None
                if mapping.get("first_action_index") is None
                else int(mapping["first_action_index"])
            ),
            first_action_time_hours=_opt_float(
                mapping.get("first_action_time_hours")
            ),
            recovered=bool(mapping.get("recovered", False)),
            recovery_index=(
                None
                if mapping.get("recovery_index") is None
                else int(mapping["recovery_index"])
            ),
            recovery_time_hours=_opt_float(mapping.get("recovery_time_hours")),
            time_to_recovery_hours=_opt_float(
                mapping.get("time_to_recovery_hours")
            ),
            residual_alarms=int(mapping.get("residual_alarms", 0)),
            residual_alarm_rate=_opt_float(mapping.get("residual_alarm_rate")),
            trip_avoided=None if trip_avoided is None else bool(trip_avoided),
            shutdown_time_hours=_opt_float(mapping.get("shutdown_time_hours")),
            shutdown_reason=(
                None if shutdown_reason is None else str(shutdown_reason)
            ),
        )


def build_response_report(
    live: LiveRunReport,
    policy_enabled: bool,
    tracker: RecoveryTracker,
    actions: Tuple[ActionRecord, ...],
    shutdown_time_hours: Optional[float],
    shutdown_reason: Optional[str],
) -> ResponseReport:
    """Assemble the per-run verdict from the runner's pieces."""
    first = actions[0] if actions else None
    residual_alarms = 0
    residual_alarm_rate: Optional[float] = None
    if first is not None:
        residual_alarms = sum(
            1
            for events in live.alarm_events.values()
            for event in events
            if event.raised and event.index > first.index
        )
        samples_after = live.n_samples - 1 - first.index
        residual_alarm_rate = (
            residual_alarms / samples_after if samples_after > 0 else 0.0
        )
    return ResponseReport(
        live=live,
        policy_enabled=bool(policy_enabled),
        hold_samples=tracker.hold_samples,
        actions=actions,
        first_action_index=None if first is None else first.index,
        first_action_time_hours=None if first is None else first.time_hours,
        recovered=tracker.recovered,
        recovery_index=tracker.recovery_index,
        recovery_time_hours=tracker.recovery_time_hours,
        time_to_recovery_hours=tracker.time_to_recovery_hours,
        residual_alarms=residual_alarms,
        residual_alarm_rate=residual_alarm_rate,
        trip_avoided=None if first is None else shutdown_time_hours is None,
        shutdown_time_hours=shutdown_time_hours,
        shutdown_reason=shutdown_reason,
    )
