"""Response-enabled campaigns: per-scenario runs with the action runner on.

Response actions mutate the trajectory mid-run, so response-enabled runs
must never share NPZ cache entries with plain campaign runs.  This module
therefore executes them in-process through
:func:`~repro.experiments.runner.run_scenario` — bypassing the result
cache entirely — while deriving per-run seeds with the engine's own
:func:`~repro.experiments.parallel.scenario_run_seed`, so a run the
policy never touches is bitwise-identical to the same run under the
batch/parallel engine.  Early stopping is deliberately off: recovery has
to stay observable after the detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.experiments.evaluation import Evaluation
from repro.experiments.parallel import scenario_run_seed
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import Scenario
from repro.live.monitor import LiveMonitor
from repro.live.observer import LiveRunObserver
from repro.response.metrics import ResponseReducer, ResponseSummary
from repro.response.policy import ResponsePolicy
from repro.response.runner import ResponseRunner
from repro.response.verify import ResponseReport

__all__ = [
    "ResponseScenarioResult",
    "evaluate_scenario_response",
    "evaluate_all_response",
]

#: Per-report progress callback: ``(scenario_name, run_index, report)``.
OnReport = Callable[[str, int, ResponseReport], None]


@dataclass(frozen=True)
class ResponseScenarioResult:
    """Every response report of one scenario, plus its aggregate."""

    scenario: Scenario
    reports: Tuple[ResponseReport, ...]

    @property
    def n_runs(self) -> int:
        """How many runs were executed."""
        return len(self.reports)

    def to_summary(self) -> ResponseSummary:
        """Replay the reports through a fresh :class:`ResponseReducer`."""
        reducer = ResponseReducer(self.scenario)
        for report in self.reports:
            reducer.update(report)
        return reducer.summary()

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON-safe mapping (summary plus per-run reports)."""
        return {
            "scenario": self.scenario.name,
            "summary": self.to_summary().to_mapping(),
            "reports": [report.to_mapping() for report in self.reports],
        }


def evaluate_scenario_response(
    evaluation: Evaluation,
    scenario: Scenario,
    policy: ResponsePolicy,
    n_runs: Optional[int] = None,
    on_report: Optional[OnReport] = None,
) -> ResponseScenarioResult:
    """Run one scenario ``n_runs`` times with the response runner attached.

    ``evaluation`` must be calibrated (it is calibrated on demand
    otherwise).  Seeds follow the campaign engine's derivation, so the
    pre-action prefix of every run matches the plain campaign bitwise.
    """
    if not evaluation.is_calibrated:
        evaluation.calibrate(keep_results=False)
    config = evaluation.config
    total = n_runs if n_runs is not None else config.n_runs_per_scenario
    reports = []
    for run_index in range(total):
        seed = scenario_run_seed(config.seed, run_index)
        monitor = LiveMonitor(
            evaluation.analyzer,
            anomaly_start_hour=(
                config.anomaly_start_hour if scenario.is_anomalous else None
            ),
        )
        runner = ResponseRunner(monitor, policy)
        run_scenario(
            scenario,
            config.simulation.with_seed(seed),
            anomaly_start_hour=config.anomaly_start_hour,
            observers=[LiveRunObserver(monitor)],
            observer_factories=[runner.bind],
        )
        report = runner.report()
        reports.append(report)
        if on_report is not None:
            on_report(scenario.name, run_index, report)
    return ResponseScenarioResult(scenario=scenario, reports=tuple(reports))


def evaluate_all_response(
    evaluation: Evaluation,
    scenarios: Iterable[Scenario],
    policy: ResponsePolicy,
    n_runs: Optional[int] = None,
    on_report: Optional[OnReport] = None,
) -> Dict[str, ResponseScenarioResult]:
    """Run every scenario response-enabled; results keyed by scenario name."""
    results: Dict[str, ResponseScenarioResult] = {}
    for scenario in scenarios:
        results[scenario.name] = evaluate_scenario_response(
            evaluation, scenario, policy, n_runs=n_runs, on_report=on_report
        )
    return results
