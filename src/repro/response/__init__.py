"""Closed-loop response: policy engine, action runner, recovery verification.

The paper's pipeline stops at detection + oMEDA diagnosis; this subsystem
closes the loop the way industrial anomaly-response stacks do:

* :mod:`repro.response.policy` — declarative rules mapping a confirmed
  alarm plus its oMEDA signature to a recovery action (the ``[response]``
  spec section).
* :mod:`repro.response.runner` — a step observer that applies the chosen
  action mid-run through the simulator's mutation seams, deterministically.
* :mod:`repro.response.verify` / :mod:`repro.response.metrics` — scoring
  whether the plant returned to in-control operation, per-run
  ``ResponseReport`` verdicts and the per-scenario recovery table.
* :mod:`repro.response.campaign` — response-enabled campaign execution
  (in-process, cache-bypassing, engine-identical seeds).
"""

from repro.response.campaign import (
    ResponseScenarioResult,
    evaluate_all_response,
    evaluate_scenario_response,
)
from repro.response.metrics import (
    ResponseReducer,
    ResponseSummary,
    build_response_table,
)
from repro.response.policy import ACTIONS, ActionSpec, ResponsePolicy
from repro.response.runner import ResponseRunner, apply_action
from repro.response.verify import (
    ActionRecord,
    RecoveryTracker,
    ResponseReport,
    build_response_report,
)

__all__ = [
    "ACTIONS",
    "ActionSpec",
    "ResponsePolicy",
    "ResponseRunner",
    "apply_action",
    "ActionRecord",
    "RecoveryTracker",
    "ResponseReport",
    "build_response_report",
    "ResponseReducer",
    "ResponseSummary",
    "build_response_table",
    "ResponseScenarioResult",
    "evaluate_scenario_response",
    "evaluate_all_response",
]
