"""Campaign-level response metrics: the recovery table.

:class:`ResponseReducer` folds the :class:`~repro.response.verify.ResponseReport`
of every run of one scenario into a :class:`ResponseSummary`;
:func:`build_response_table` turns the per-scenario summaries into the
recovery table (actions taken, recovery rate, mean time-to-recovery,
trip-avoidance rate, residual alarm rate) printed by
``run_campaign.py --respond`` — the same reducer/summary/table shape as
:mod:`repro.experiments.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.experiments.scenarios import Scenario
from repro.response.verify import ResponseReport

__all__ = ["ResponseReducer", "ResponseSummary", "build_response_table"]


def _mean(values: Tuple[float, ...]) -> Optional[float]:
    return sum(values) / len(values) if values else None


@dataclass(frozen=True)
class ResponseSummary:
    """Aggregated response outcome of one scenario's runs.

    ``recovery_rate`` and ``trip_avoidance_rate`` are taken over the runs
    in which at least one action fired (``n_responded``) — a run the
    policy never touched can neither recover nor avoid a trip on the
    response's account.
    """

    scenario_name: str
    title: str
    n_runs: int = 0
    n_detected: int = 0
    n_responded: int = 0
    n_actions: int = 0
    n_recovered: int = 0
    n_trips: int = 0
    n_trips_avoided: int = 0
    times_to_recovery_hours: Tuple[float, ...] = ()
    residual_alarm_rates: Tuple[float, ...] = ()

    @property
    def recovery_rate(self) -> float:
        """Fraction of responded runs that returned to in-control operation."""
        return self.n_recovered / self.n_responded if self.n_responded else 0.0

    @property
    def trip_avoidance_rate(self) -> float:
        """Fraction of responded runs that finished without a safety trip."""
        return (
            self.n_trips_avoided / self.n_responded if self.n_responded else 0.0
        )

    @property
    def mean_time_to_recovery_hours(self) -> Optional[float]:
        """Mean hours from first action to recovery, over recovered runs."""
        return _mean(self.times_to_recovery_hours)

    @property
    def mean_residual_alarm_rate(self) -> Optional[float]:
        """Mean post-action alarm rate, over responded runs."""
        return _mean(self.residual_alarm_rates)

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON-safe mapping of this summary."""
        return {
            "scenario_name": self.scenario_name,
            "title": self.title,
            "n_runs": int(self.n_runs),
            "n_detected": int(self.n_detected),
            "n_responded": int(self.n_responded),
            "n_actions": int(self.n_actions),
            "n_recovered": int(self.n_recovered),
            "n_trips": int(self.n_trips),
            "n_trips_avoided": int(self.n_trips_avoided),
            "times_to_recovery_hours": [
                float(value) for value in self.times_to_recovery_hours
            ],
            "residual_alarm_rates": [
                float(value) for value in self.residual_alarm_rates
            ],
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ResponseSummary":
        """Rebuild a summary from its :meth:`to_mapping` form."""
        return cls(
            scenario_name=str(mapping["scenario_name"]),
            title=str(mapping.get("title", mapping["scenario_name"])),
            n_runs=int(mapping.get("n_runs", 0)),
            n_detected=int(mapping.get("n_detected", 0)),
            n_responded=int(mapping.get("n_responded", 0)),
            n_actions=int(mapping.get("n_actions", 0)),
            n_recovered=int(mapping.get("n_recovered", 0)),
            n_trips=int(mapping.get("n_trips", 0)),
            n_trips_avoided=int(mapping.get("n_trips_avoided", 0)),
            times_to_recovery_hours=tuple(
                float(value)
                for value in mapping.get("times_to_recovery_hours", ())
            ),
            residual_alarm_rates=tuple(
                float(value)
                for value in mapping.get("residual_alarm_rates", ())
            ),
        )


class ResponseReducer:
    """Incrementally folds one scenario's response reports into a summary."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self._n_runs = 0
        self._n_detected = 0
        self._n_responded = 0
        self._n_actions = 0
        self._n_recovered = 0
        self._n_trips = 0
        self._n_trips_avoided = 0
        self._times_to_recovery: List[float] = []
        self._residual_rates: List[float] = []

    def update(self, report: ResponseReport) -> None:
        """Fold one run's report in."""
        self._n_runs += 1
        self._n_detected += bool(report.detected)
        self._n_actions += report.n_actions
        if report.shutdown_time_hours is not None:
            self._n_trips += 1
        if report.responded:
            self._n_responded += 1
            if report.trip_avoided:
                self._n_trips_avoided += 1
            if report.recovered and report.time_to_recovery_hours is not None:
                self._n_recovered += 1
                self._times_to_recovery.append(report.time_to_recovery_hours)
            if report.residual_alarm_rate is not None:
                self._residual_rates.append(report.residual_alarm_rate)

    def summary(self) -> ResponseSummary:
        """The aggregate over every report folded in so far."""
        return ResponseSummary(
            scenario_name=self.scenario.name,
            title=self.scenario.title,
            n_runs=self._n_runs,
            n_detected=self._n_detected,
            n_responded=self._n_responded,
            n_actions=self._n_actions,
            n_recovered=self._n_recovered,
            n_trips=self._n_trips,
            n_trips_avoided=self._n_trips_avoided,
            times_to_recovery_hours=tuple(self._times_to_recovery),
            residual_alarm_rates=tuple(self._residual_rates),
        )


def build_response_table(
    summaries: Iterable[ResponseSummary],
) -> List[Dict[str, Any]]:
    """The per-scenario recovery table, one row per scenario."""
    rows = []
    for summary in summaries:
        rows.append(
            {
                "scenario": summary.scenario_name,
                "title": summary.title,
                "n_runs": summary.n_runs,
                "n_detected": summary.n_detected,
                "n_responded": summary.n_responded,
                "n_actions": summary.n_actions,
                "n_recovered": summary.n_recovered,
                "recovery_rate": summary.recovery_rate,
                "time_to_recovery_hours": summary.mean_time_to_recovery_hours,
                "n_trips": summary.n_trips,
                "trip_avoidance_rate": summary.trip_avoidance_rate,
                "residual_alarm_rate": summary.mean_residual_alarm_rate,
            }
        )
    return rows
