"""Parallel campaign engine with deterministic fan-out and result caching.

The paper's evaluation (Section V) is a large batch of independent closed-loop
simulations: a calibration campaign plus repeated runs of every anomalous
scenario.  :class:`CampaignEngine` executes such a batch over a
``ProcessPoolExecutor`` while guaranteeing that parallel and serial execution
produce **bitwise-identical** results:

* every run is fully described by an immutable :class:`RunSpec` whose seed is
  derived *before* dispatch, so no run depends on execution order or on
  shared random state;
* results are returned in spec order regardless of completion order.

On top of the executor sits an optional on-disk :class:`ResultCache` keyed by
(scenario, simulation config, seed, code version): re-running a campaign
after a config tweak only simulates the runs whose key actually changed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro._version import __version__
from repro.common.config import (
    EarlyStopPolicy,
    ExperimentConfig,
    ParallelConfig,
    SimulationConfig,
)
from repro.common.exceptions import ConfigurationError
from repro.experiments.scenarios import Scenario, normal_scenario
from repro.obs.logs import get_logger
from repro.obs.trace import span as obs_span
from repro.process.simulator import SimulationResult

__all__ = [
    "RunSpec",
    "CampaignStats",
    "PruneStats",
    "ResultCache",
    "CampaignEngine",
    "calibration_run_seed",
    "scenario_run_seed",
    "calibration_specs",
    "scenario_specs",
]

_LOG = get_logger("engine")


# ----------------------------------------------------------------------
# Deterministic per-run seed derivation
# ----------------------------------------------------------------------
def calibration_run_seed(root_seed: int, run_index: int) -> int:
    """Seed of the ``run_index``-th calibration run of a campaign."""
    return root_seed * 100_003 + run_index


def scenario_run_seed(root_seed: int, run_index: int) -> int:
    """Seed of the ``run_index``-th evaluation run of a scenario."""
    return root_seed * 7_919 + 1000 + run_index


# ----------------------------------------------------------------------
# Run specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """An immutable, self-contained description of one closed-loop run.

    A spec carries everything a worker process needs — scenario, simulation
    configuration (including the derived per-run seed), anomaly onset and
    safety switch — so runs can execute in any order, in any process, and
    still produce exactly the result a serial loop would have produced.
    """

    scenario: Scenario
    simulation: SimulationConfig
    anomaly_start_hour: float = 10.0
    enable_safety: bool = True
    #: Optional live early-stop policy: the run is monitored while it
    #: simulates and truncated once a detection is confirmed.  Executing
    #: such a spec needs a fitted analyzer installed on the engine
    #: (:meth:`CampaignEngine.set_live_analyzer`).
    early_stop: Optional[EarlyStopPolicy] = None
    #: Identity of the calibration behind the live models (see
    #: :func:`repro.live.campaign.live_context_token`); part of the cache
    #: key, because a truncated result depends on what the monitor was
    #: fitted on.
    live_token: str = ""

    def cache_token(self) -> Dict[str, object]:
        """The canonical content this run's cache key is derived from.

        The scenario enters through :meth:`Scenario.to_mapping` — its
        canonical serialized form — so a scenario loaded from a spec file
        and one built in code hash identically.  Live early-stop runs add a
        ``live`` entry (policy + calibration identity), so truncated results
        can never shadow — or be shadowed by — full-horizon results of the
        same run.
        """
        token: Dict[str, object] = {
            "code_version": __version__,
            "scenario": self.scenario.to_mapping(),
            "simulation": asdict(self.simulation),
            "anomaly_start_hour": float(self.anomaly_start_hour),
            "enable_safety": bool(self.enable_safety),
        }
        if self.early_stop is not None:
            token["live"] = {
                "early_stop": self.early_stop.to_mapping(),
                "context": self.live_token,
            }
        return token

    def cache_key(self) -> str:
        """A stable hex digest identifying this run's inputs and code version."""
        blob = json.dumps(self.cache_token(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def calibration_specs(
    config: ExperimentConfig, scenario: Optional[Scenario] = None
) -> List[RunSpec]:
    """Specs of the attack-free calibration campaign of a configuration."""
    base_scenario = scenario or normal_scenario()
    return [
        RunSpec(
            scenario=base_scenario,
            simulation=config.simulation.with_seed(
                calibration_run_seed(config.seed, run_index)
            ),
            anomaly_start_hour=config.anomaly_start_hour,
            enable_safety=True,
        )
        for run_index in range(config.n_calibration_runs)
    ]


def scenario_specs(
    config: ExperimentConfig,
    scenario: Scenario,
    n_runs: Optional[int] = None,
) -> List[RunSpec]:
    """Specs of the repeated evaluation runs of one scenario."""
    n_runs = n_runs if n_runs is not None else config.n_runs_per_scenario
    return [
        RunSpec(
            scenario=scenario,
            simulation=config.simulation.with_seed(
                scenario_run_seed(config.seed, run_index)
            ),
            anomaly_start_hour=config.anomaly_start_hour,
            enable_safety=True,
        )
        for run_index in range(n_runs)
    ]


# How long a ``.tmp.npz`` must sit untouched before prune treats it as the
# debris of a crashed writer rather than an in-flight store.
_TMP_GRACE_SECONDS = 3600.0


def _unlink_quietly(path: Path) -> bool:
    """Remove a file; report whether it is actually gone.

    A concurrent removal by another process counts as success (the file is
    gone either way); a permission or I/O error does not — the caller must
    not book the entry as evicted.
    """
    try:
        path.unlink()
        return True
    except FileNotFoundError:
        return True
    except OSError:
        return False


# The fitted dual-level analyzer live early-stop runs score against,
# installed once per worker by the pool initializer (or in-process on the
# serial path) so it is pickled per *worker*, not per task.
_LIVE_ANALYZER = None


def _install_live_analyzer(analyzer) -> None:
    """Pool initializer: pin the fitted live analyzer in this process."""
    global _LIVE_ANALYZER
    _LIVE_ANALYZER = analyzer


def _execute_spec(spec: RunSpec) -> SimulationResult:
    """Execute one spec (top-level so it is picklable by worker pools)."""
    from repro.experiments.runner import run_scenario

    live_analyzer = None
    if spec.early_stop is not None:
        live_analyzer = _LIVE_ANALYZER
        if live_analyzer is None:
            raise ConfigurationError(
                "the spec requests live early stopping but no fitted analyzer "
                "is installed; call CampaignEngine.set_live_analyzer first"
            )
    return run_scenario(
        spec.scenario,
        spec.simulation,
        anomaly_start_hour=spec.anomaly_start_hour,
        enable_safety=spec.enable_safety,
        early_stop=spec.early_stop,
        live_analyzer=live_analyzer,
    )


def _execute_specs_batch(
    specs: Sequence[RunSpec], batch_size: Optional[int]
) -> List[SimulationResult]:
    """Execute a group of specs through the vectorized lockstep backend.

    Top-level so worker pools can pickle it; each pool task steps one whole
    batch of runs in a single vectorized loop, which is what makes the
    batch backend's speedup multiplicative with the process fan-out.
    """
    from repro.batch import run_specs_batched

    live_analyzer = None
    if any(spec.early_stop is not None for spec in specs):
        live_analyzer = _LIVE_ANALYZER
        if live_analyzer is None:
            raise ConfigurationError(
                "the spec requests live early stopping but no fitted analyzer "
                "is installed; call CampaignEngine.set_live_analyzer first"
            )
    with obs_span("engine.batch", n_runs=len(specs)):
        results = run_specs_batched(
            specs, batch_size=batch_size, live_analyzer=live_analyzer
        )
    _LOG.debug(
        "batch executed",
        extra={"n_runs": len(specs), "batch_size": batch_size},
    )
    return results


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
@dataclass
class PruneStats:
    """What a :meth:`ResultCache.prune` pass removed and what remains."""

    n_removed: int = 0
    bytes_removed: int = 0
    n_kept: int = 0
    bytes_kept: int = 0


class ResultCache:
    """A directory of ``<cache_key>.npz`` files, one per completed run.

    Entries are written atomically (tmp file + rename) so a crashed or
    interrupted campaign never leaves a truncated entry behind; unreadable
    entries are treated as misses and overwritten.  Eviction is either
    manual — :meth:`clear` drops everything, and bumping the package version
    invalidates every old key (the key embeds the code version) — or policy
    driven: :meth:`prune` applies size and age caps, evicting the oldest
    entries first.  :class:`CampaignEngine` calls :meth:`prune`
    automatically after each campaign when its
    :class:`~repro.common.config.ParallelConfig` carries
    ``cache_max_bytes`` / ``cache_max_age``.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path_for(self, spec: RunSpec) -> Path:
        """The cache file a spec maps to (whether or not it exists)."""
        return self.directory / f"{spec.cache_key()}.npz"

    def load(self, spec: RunSpec) -> Optional[SimulationResult]:
        """Return the cached result of a spec, or ``None`` on a miss."""
        from repro.datasets.io import load_result_npz

        path = self.path_for(spec)
        if not path.is_file():
            return None
        try:
            return load_result_npz(path)
        except Exception:
            return None

    def store(self, spec: RunSpec, result: SimulationResult) -> Path:
        """Persist the result of a spec and return its cache path."""
        from repro.datasets.io import save_result_npz

        path = self.path_for(spec)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Unique per-writer tmp name: concurrent campaigns sharing a cache
        # directory must never interleave writes into the same file.  The
        # ``.npz`` suffix is required (numpy appends it otherwise); tmp files
        # are told apart by the ``.tmp.npz`` tail.
        handle, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp.npz")
        os.close(handle)
        save_result_npz(result, tmp_name)
        os.replace(tmp_name, path)
        return path

    def _entries(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return [
            entry
            for entry in self.directory.glob("*.npz")
            if not entry.name.endswith(".tmp.npz")
        ]

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        """Total size of all cache entries, in bytes."""
        total = 0
        for entry in self._entries():
            try:
                total += entry.stat().st_size
            except OSError:
                continue
        return total

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> PruneStats:
        """Evict entries until the cache satisfies the given caps.

        The age cap removes every entry whose modification time is older
        than ``now - max_age_seconds``; the size cap then removes the
        oldest remaining entries until the total size fits ``max_bytes``.
        Either cap may be ``None`` (policy disabled).  ``now`` is
        overridable for tests.  Entries that vanish concurrently are
        skipped, so parallel campaigns sharing a cache cannot trip a prune.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError("max_bytes must be >= 0 or None")
        if max_age_seconds is not None and max_age_seconds < 0:
            raise ConfigurationError("max_age_seconds must be >= 0 or None")
        now = time.time() if now is None else float(now)
        stamped: List[tuple] = []
        for entry in self._entries():
            try:
                stat = entry.stat()
            except OSError:
                continue
            stamped.append((stat.st_mtime, stat.st_size, entry))
        stamped.sort(key=lambda item: item[0])  # oldest first

        stats = PruneStats()
        keep: List[tuple] = []
        for mtime, size, entry in stamped:
            expired = max_age_seconds is not None and now - mtime > max_age_seconds
            if expired and _unlink_quietly(entry):
                stats.n_removed += 1
                stats.bytes_removed += size
            else:
                # Still on disk (not expired, or the unlink failed): it
                # keeps counting toward the size cap below.
                keep.append((mtime, size, entry))

        if max_bytes is not None:
            remaining = sum(size for _, size, _ in keep)
            survivors = []
            for mtime, size, entry in keep:  # oldest evicted first
                if remaining > max_bytes and _unlink_quietly(entry):
                    stats.n_removed += 1
                    stats.bytes_removed += size
                    remaining -= size
                else:
                    survivors.append((mtime, size, entry))
            keep = survivors

        stats.n_kept = len(keep)
        stats.bytes_kept = sum(size for _, size, _ in keep)

        # Stray tmp files from a crashed writer are not entries, but they do
        # occupy disk; sweep the ones old enough that no live writer can
        # still hold them (a store takes seconds, the grace period is an
        # hour).
        if self.directory.is_dir():
            for leftover in self.directory.glob("*.tmp.npz"):
                try:
                    age = now - leftover.stat().st_mtime
                except OSError:
                    continue
                if age > _TMP_GRACE_SECONDS:
                    _unlink_quietly(leftover)
        return stats

    def clear(self) -> int:
        """Delete every cache entry (and stray tmp files); count the entries."""
        entries = self._entries()
        for entry in entries:
            entry.unlink()
        if self.directory.is_dir():
            for leftover in self.directory.glob("*.tmp.npz"):
                leftover.unlink()
        return len(entries)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class CampaignStats:
    """What the engine actually did for the last batch it executed."""

    n_runs: int = 0
    n_cache_hits: int = 0
    n_simulated: int = 0
    n_workers: int = 1
    backend: str = "serial"
    wall_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of runs served from the cache."""
        if self.n_runs == 0:
            return 0.0
        return self.n_cache_hits / self.n_runs

    def absorb(self, other: "CampaignStats") -> "CampaignStats":
        """Fold another batch's stats into this one (multi-batch campaigns)."""
        self.n_runs += other.n_runs
        self.n_cache_hits += other.n_cache_hits
        self.n_simulated += other.n_simulated
        self.n_workers = max(self.n_workers, other.n_workers)
        if other.backend in ("process", "batch"):
            self.backend = other.backend
        self.wall_seconds += other.wall_seconds
        return self


class CampaignEngine:
    """Executes batches of :class:`RunSpec` — parallel, cached, deterministic.

    Parameters
    ----------
    config:
        Execution plan (worker count, backend, cache directory).  The
        default fans out over all CPUs with no cache.

    Notes
    -----
    Results are bitwise-identical across backends and worker counts because
    every run is seeded in its spec and returned in spec order.  The pool is
    only spun up when more than one run actually needs simulating.
    """

    def __init__(self, config: Optional[ParallelConfig] = None):
        self.config = config or ParallelConfig()
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_dir) if self.config.caching else None
        )
        self.last_stats = CampaignStats()
        self._live_analyzer = None

    def set_live_analyzer(self, analyzer) -> None:
        """Install the fitted analyzer live early-stop specs score against.

        The analyzer is shipped once per worker process when the next pool
        spins up (and installed in-process for the serial path).  Specs
        without an :attr:`RunSpec.early_stop` policy ignore it entirely.
        """
        self._live_analyzer = analyzer

    def run(
        self, specs: Sequence[RunSpec], prune: bool = True
    ) -> List[SimulationResult]:
        """Execute every spec and return results in spec order.

        One batch, one pool: equivalent to draining :meth:`iter_run` with a
        single campaign-sized chunk.  ``prune=False`` defers the configured
        cache eviction policy to the caller — used by the streaming
        pipeline, which hands cache paths to analysis workers and must not
        evict entries mid-campaign.
        """
        specs = list(specs)
        return list(
            self.iter_run(specs, chunk_size=max(1, len(specs)), prune=prune)
        )

    def iter_run(
        self,
        specs: Sequence[RunSpec],
        chunk_size: Optional[int] = None,
        prune: bool = True,
    ) -> Iterator[SimulationResult]:
        """Execute specs in chunks, yielding results in spec order.

        The streaming counterpart of :meth:`run`: at most ``chunk_size``
        results (default :attr:`ParallelConfig.resolved_chunk_size`) are
        alive at once, so peak memory is O(chunk) instead of O(campaign).
        Cached entries are loaded lazily, chunk by chunk; pending runs of a
        chunk fan out over a worker pool that persists across chunks, and
        results are cached as they complete, so an interrupted campaign
        resumes from the runs that already finished.  Results are
        bitwise-identical to :meth:`run` for the same specs.

        :attr:`last_stats` covers the chunks actually consumed and is
        finalized when the generator is exhausted or closed.
        """
        specs = list(specs)
        size = (
            int(chunk_size)
            if chunk_size is not None
            else self.config.resolved_simulation_chunk_size
        )
        if size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        stats = CampaignStats(backend="serial", n_workers=1)
        pool: Optional[ProcessPoolExecutor] = None
        try:
            for offset in range(0, len(specs), size):
                # Time only this generator's own work (cache loads and
                # simulation), not whatever the consumer does between yields.
                chunk_started = time.perf_counter()
                chunk = specs[offset : offset + size]
                chunk_index = offset // size
                with obs_span(
                    "engine.chunk", chunk=chunk_index, n_runs=len(chunk)
                ) as chunk_span:
                    results: List[Optional[SimulationResult]] = [None] * len(chunk)
                    pending: List[int] = []
                    with obs_span("engine.cache_load", chunk=chunk_index):
                        for index, spec in enumerate(chunk):
                            cached = (
                                self.cache.load(spec)
                                if self.cache is not None
                                else None
                            )
                            if cached is not None:
                                results[index] = cached
                            else:
                                pending.append(index)
                    stats.n_runs += len(chunk)
                    stats.n_cache_hits += len(chunk) - len(pending)

                    def book(index: int, result: SimulationResult) -> None:
                        """Record one simulated result (and cache it)."""
                        results[index] = result
                        if self.cache is not None:
                            self.cache.store(chunk[index], result)

                    n_workers = self.config.resolved_workers
                    batching = self.config.backend == "batch"
                    use_pool = (
                        self.config.backend in ("process", "batch")
                        and n_workers > 1
                        and len(pending) > 1
                    )
                    if batching and not use_pool:
                        # In-process vectorized execution: one lockstep loop
                        # steps the whole pending chunk.  Install the analyzer
                        # unconditionally (including None), as the serial path
                        # does, so no stale calibration can linger.
                        _install_live_analyzer(self._live_analyzer)
                        batch_results = _execute_specs_batch(
                            [chunk[index] for index in pending],
                            self.config.batch_size,
                        )
                        for index, result in zip(pending, batch_results):
                            book(index, result)
                        stats.backend = "batch"
                    elif use_pool:
                        if pool is None:
                            # A chunk can never hold more than ``size`` pending
                            # runs, so a larger pool would only idle.
                            initializer, initargs = None, ()
                            if self._live_analyzer is not None:
                                initializer = _install_live_analyzer
                                initargs = (self._live_analyzer,)
                            pool = ProcessPoolExecutor(
                                max_workers=min(n_workers, size),
                                initializer=initializer,
                                initargs=initargs,
                            )
                        if batching:
                            # Fan whole batches out: every task advances up to
                            # ``batch_size`` runs in one vectorized loop, so the
                            # batch speedup multiplies with the process fan-out.
                            group_size = self.config.resolved_batch_size
                            futures = {}
                            for start in range(0, len(pending), group_size):
                                group = pending[start : start + group_size]
                                future = pool.submit(
                                    _execute_specs_batch,
                                    [chunk[index] for index in group],
                                    self.config.batch_size,
                                )
                                futures[future] = group
                            for future in as_completed(futures):
                                group = futures[future]
                                for index, result in zip(group, future.result()):
                                    book(index, result)
                            stats.backend = "batch"
                            # Batching submits one task per batch, so that —
                            # not the pending-run count — bounds the workers
                            # actually busy.
                            stats.n_workers = max(
                                stats.n_workers, min(n_workers, len(futures))
                            )
                        else:
                            futures = {
                                pool.submit(_execute_spec, chunk[index]): index
                                for index in pending
                            }
                            for future in as_completed(futures):
                                book(futures[future], future.result())
                            stats.backend = "process"
                            stats.n_workers = max(
                                stats.n_workers, min(n_workers, len(pending))
                            )
                    else:
                        # Install unconditionally — including None: a previous
                        # campaign's analyzer must not linger in the module
                        # global, or an engine that was never given one would
                        # silently score live specs against a stale calibration
                        # instead of raising.
                        _install_live_analyzer(self._live_analyzer)
                        for index in pending:
                            book(index, _execute_spec(chunk[index]))
                    stats.n_simulated += len(pending)
                    stats.wall_seconds += time.perf_counter() - chunk_started
                    chunk_span.annotate(
                        backend=stats.backend,
                        n_cache_hits=len(chunk) - len(pending),
                        n_simulated=len(pending),
                    )
                    _LOG.info(
                        "chunk executed",
                        extra={
                            "chunk": chunk_index,
                            "n_runs": len(chunk),
                            "n_cache_hits": len(chunk) - len(pending),
                            "n_simulated": len(pending),
                            "backend": stats.backend,
                        },
                    )
                yield from results  # type: ignore[misc]
        finally:
            if pool is not None:
                pool.shutdown()
            self.last_stats = stats
            if prune:
                self.prune_cache()

    def prune_cache(self) -> Optional[PruneStats]:
        """Apply the configured cache eviction policy, if any."""
        if self.cache is None or not self.config.has_eviction_policy:
            return None
        return self.cache.prune(
            max_bytes=self.config.cache_max_bytes,
            max_age_seconds=self.config.cache_max_age,
        )
