"""Parallel campaign engine with deterministic fan-out and result caching.

The paper's evaluation (Section V) is a large batch of independent closed-loop
simulations: a calibration campaign plus repeated runs of every anomalous
scenario.  :class:`CampaignEngine` executes such a batch over a
``ProcessPoolExecutor`` while guaranteeing that parallel and serial execution
produce **bitwise-identical** results:

* every run is fully described by an immutable :class:`RunSpec` whose seed is
  derived *before* dispatch, so no run depends on execution order or on
  shared random state;
* results are returned in spec order regardless of completion order.

On top of the executor sits an optional on-disk :class:`ResultCache` keyed by
(scenario, simulation config, seed, code version): re-running a campaign
after a config tweak only simulates the runs whose key actually changed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro._version import __version__
from repro.common.config import ExperimentConfig, ParallelConfig, SimulationConfig
from repro.experiments.scenarios import Scenario, normal_scenario
from repro.process.simulator import SimulationResult

__all__ = [
    "RunSpec",
    "CampaignStats",
    "ResultCache",
    "CampaignEngine",
    "calibration_run_seed",
    "scenario_run_seed",
    "calibration_specs",
    "scenario_specs",
]


# ----------------------------------------------------------------------
# Deterministic per-run seed derivation
# ----------------------------------------------------------------------
def calibration_run_seed(root_seed: int, run_index: int) -> int:
    """Seed of the ``run_index``-th calibration run of a campaign."""
    return root_seed * 100_003 + run_index


def scenario_run_seed(root_seed: int, run_index: int) -> int:
    """Seed of the ``run_index``-th evaluation run of a scenario."""
    return root_seed * 7_919 + 1000 + run_index


# ----------------------------------------------------------------------
# Run specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """An immutable, self-contained description of one closed-loop run.

    A spec carries everything a worker process needs — scenario, simulation
    configuration (including the derived per-run seed), anomaly onset and
    safety switch — so runs can execute in any order, in any process, and
    still produce exactly the result a serial loop would have produced.
    """

    scenario: Scenario
    simulation: SimulationConfig
    anomaly_start_hour: float = 10.0
    enable_safety: bool = True

    def cache_token(self) -> Dict[str, object]:
        """The canonical content this run's cache key is derived from."""
        scenario = asdict(self.scenario)
        scenario["kind"] = self.scenario.kind.value
        return {
            "code_version": __version__,
            "scenario": scenario,
            "simulation": asdict(self.simulation),
            "anomaly_start_hour": float(self.anomaly_start_hour),
            "enable_safety": bool(self.enable_safety),
        }

    def cache_key(self) -> str:
        """A stable hex digest identifying this run's inputs and code version."""
        blob = json.dumps(self.cache_token(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def calibration_specs(
    config: ExperimentConfig, scenario: Optional[Scenario] = None
) -> List[RunSpec]:
    """Specs of the attack-free calibration campaign of a configuration."""
    base_scenario = scenario or normal_scenario()
    return [
        RunSpec(
            scenario=base_scenario,
            simulation=config.simulation.with_seed(
                calibration_run_seed(config.seed, run_index)
            ),
            anomaly_start_hour=config.anomaly_start_hour,
            enable_safety=True,
        )
        for run_index in range(config.n_calibration_runs)
    ]


def scenario_specs(
    config: ExperimentConfig,
    scenario: Scenario,
    n_runs: Optional[int] = None,
) -> List[RunSpec]:
    """Specs of the repeated evaluation runs of one scenario."""
    n_runs = n_runs if n_runs is not None else config.n_runs_per_scenario
    return [
        RunSpec(
            scenario=scenario,
            simulation=config.simulation.with_seed(
                scenario_run_seed(config.seed, run_index)
            ),
            anomaly_start_hour=config.anomaly_start_hour,
            enable_safety=True,
        )
        for run_index in range(n_runs)
    ]


def _execute_spec(spec: RunSpec) -> SimulationResult:
    """Execute one spec (top-level so it is picklable by worker pools)."""
    from repro.experiments.runner import run_scenario

    return run_scenario(
        spec.scenario,
        spec.simulation,
        anomaly_start_hour=spec.anomaly_start_hour,
        enable_safety=spec.enable_safety,
    )


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """A directory of ``<cache_key>.npz`` files, one per completed run.

    Entries are written atomically (tmp file + rename) so a crashed or
    interrupted campaign never leaves a truncated entry behind; unreadable
    entries are treated as misses and overwritten.  Eviction is manual:
    :meth:`clear` drops everything, and bumping the package version
    invalidates every old key (the key embeds the code version).
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path_for(self, spec: RunSpec) -> Path:
        """The cache file a spec maps to (whether or not it exists)."""
        return self.directory / f"{spec.cache_key()}.npz"

    def load(self, spec: RunSpec) -> Optional[SimulationResult]:
        """Return the cached result of a spec, or ``None`` on a miss."""
        from repro.datasets.io import load_result_npz

        path = self.path_for(spec)
        if not path.is_file():
            return None
        try:
            return load_result_npz(path)
        except Exception:
            return None

    def store(self, spec: RunSpec, result: SimulationResult) -> Path:
        """Persist the result of a spec and return its cache path."""
        from repro.datasets.io import save_result_npz

        path = self.path_for(spec)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Unique per-writer tmp name: concurrent campaigns sharing a cache
        # directory must never interleave writes into the same file.  The
        # ``.npz`` suffix is required (numpy appends it otherwise); tmp files
        # are told apart by the ``.tmp.npz`` tail.
        handle, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp.npz")
        os.close(handle)
        save_result_npz(result, tmp_name)
        os.replace(tmp_name, path)
        return path

    def _entries(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return [
            entry
            for entry in self.directory.glob("*.npz")
            if not entry.name.endswith(".tmp.npz")
        ]

    def __len__(self) -> int:
        return len(self._entries())

    def clear(self) -> int:
        """Delete every cache entry (and stray tmp files); count the entries."""
        entries = self._entries()
        for entry in entries:
            entry.unlink()
        if self.directory.is_dir():
            for leftover in self.directory.glob("*.tmp.npz"):
                leftover.unlink()
        return len(entries)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class CampaignStats:
    """What the engine actually did for the last batch it executed."""

    n_runs: int = 0
    n_cache_hits: int = 0
    n_simulated: int = 0
    n_workers: int = 1
    backend: str = "serial"
    wall_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of runs served from the cache."""
        if self.n_runs == 0:
            return 0.0
        return self.n_cache_hits / self.n_runs


class CampaignEngine:
    """Executes batches of :class:`RunSpec` — parallel, cached, deterministic.

    Parameters
    ----------
    config:
        Execution plan (worker count, backend, cache directory).  The
        default fans out over all CPUs with no cache.

    Notes
    -----
    Results are bitwise-identical across backends and worker counts because
    every run is seeded in its spec and returned in spec order.  The pool is
    only spun up when more than one run actually needs simulating.
    """

    def __init__(self, config: Optional[ParallelConfig] = None):
        self.config = config or ParallelConfig()
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_dir) if self.config.caching else None
        )
        self.last_stats = CampaignStats()

    def run(self, specs: Sequence[RunSpec]) -> List[SimulationResult]:
        """Execute every spec and return results in spec order."""
        specs = list(specs)
        started = time.perf_counter()
        results: List[Optional[SimulationResult]] = [None] * len(specs)

        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self.cache.load(spec) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        n_workers = min(self.config.resolved_workers, max(1, len(pending)))
        use_pool = (
            self.config.backend == "process" and n_workers > 1 and len(pending) > 1
        )
        # Results are cached as they complete (not after the whole batch), so
        # an interrupted campaign resumes from the runs that already finished.
        if use_pool:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = {
                    pool.submit(_execute_spec, specs[index]): index
                    for index in pending
                }
                for future in as_completed(futures):
                    index = futures[future]
                    results[index] = future.result()
                    if self.cache is not None:
                        self.cache.store(specs[index], results[index])
        else:
            for index in pending:
                results[index] = _execute_spec(specs[index])
                if self.cache is not None:
                    self.cache.store(specs[index], results[index])

        self.last_stats = CampaignStats(
            n_runs=len(specs),
            n_cache_hits=len(specs) - len(pending),
            n_simulated=len(pending),
            n_workers=n_workers if use_pool else 1,
            backend="process" if use_pool else "serial",
            wall_seconds=time.perf_counter() - started,
        )
        return results  # type: ignore[return-value]
