"""Generators of the paper's figures (as structured data).

No plotting backend is assumed: every generator returns the numerical content
of the corresponding figure — time series, bar values, limits — that can be
rendered with :mod:`repro.plotting` (ASCII / CSV) or any external tool.

* :func:`figure1_control_chart` — an example control chart with the 95 % and
  99 % control limits (Figure 1).
* :func:`figure3_feed_response` — the evolution of XMEAS(1) under IDV(6) and
  under an integrity attack closing XMV(3) (Figure 3a/3b).
* :func:`figure4_omeda_controller` / :func:`figure5_omeda_process` — the
  oMEDA diagnosis of the four scenarios from the controller-level and the
  process-level view (Figures 4 and 5).
* :func:`arl_table` — the ARL behaviour discussed in the text of Section V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.config import ExperimentConfig, SimulationConfig
from repro.experiments.evaluation import Evaluation, ScenarioEvaluation
from repro.experiments.registry import resolve_scenario, scenario_title
from repro.experiments.runner import run_scenario
from repro.mspc.model import MSPCMonitor

__all__ = [
    "ControlChartFigure",
    "FeedResponseFigure",
    "OmedaFigure",
    "figure1_control_chart",
    "figure3_feed_response",
    "figure4_omeda_controller",
    "figure5_omeda_process",
    "omeda_figures",
    "arl_table",
]


@dataclass
class ControlChartFigure:
    """Data behind Figure 1: a statistic over time with its control limits."""

    statistic: str
    timestamps: np.ndarray
    values: np.ndarray
    limits: Dict[float, float]

    def fraction_below(self, confidence: float) -> float:
        """Fraction of points below the limit at ``confidence``."""
        return float(np.mean(self.values <= self.limits[confidence]))


@dataclass
class FeedResponseFigure:
    """Data behind Figure 3: XMEAS(1) under IDV(6) vs. an attack on XMV(3)."""

    variable: str
    anomaly_start_hour: float
    idv6_time: np.ndarray
    idv6_values: np.ndarray
    idv6_shutdown_hour: Optional[float]
    attack_time: np.ndarray
    attack_values: np.ndarray
    attack_shutdown_hour: Optional[float]


@dataclass
class OmedaFigure:
    """Data behind one panel of Figure 4 or 5: an oMEDA bar chart.

    ``title`` is the caption of the panel; it is resolved from the
    evaluated scenario (or the registry), so user-defined scenarios get
    proper captions without any figure-code change.
    """

    scenario: str
    view: str
    variable_names: Tuple[str, ...]
    contributions: np.ndarray
    title: str = ""

    def __post_init__(self) -> None:
        if not self.title:
            self.title = scenario_title(self.scenario)

    def dominant_variable(self) -> Optional[str]:
        """Variable with the largest absolute bar (None when empty)."""
        if self.contributions.size == 0:
            return None
        return self.variable_names[int(np.argmax(np.abs(self.contributions)))]

    def value_of(self, variable: str) -> float:
        """Bar value of a named variable."""
        return float(self.contributions[self.variable_names.index(variable)])


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
def figure1_control_chart(
    evaluation: Optional[Evaluation] = None,
    config: Optional[ExperimentConfig] = None,
    statistic: str = "D",
) -> ControlChartFigure:
    """An example control chart of normal operation with 95 %/99 % limits.

    When an already-calibrated :class:`Evaluation` is supplied its models and
    calibration data are reused; otherwise a small campaign is run with the
    given (or fast default) configuration.
    """
    if evaluation is None:
        evaluation = Evaluation(config or ExperimentConfig.fast())
    if not evaluation.is_calibrated:
        evaluation.calibrate()

    monitor: MSPCMonitor = evaluation.analyzer.controller_monitor
    verification = run_scenario(
        resolve_scenario("normal"),
        evaluation.config.simulation.with_seed(evaluation.config.seed + 999_331),
        anomaly_start_hour=evaluation.config.anomaly_start_hour,
    )
    result = monitor.monitor(verification.controller_data)
    chart = result.d_chart if statistic.upper() == "D" else result.q_chart
    limits = {
        confidence: chart.limits.at(confidence)
        for confidence in chart.limits.confidence_levels
    }
    return ControlChartFigure(
        statistic=chart.statistic,
        timestamps=np.asarray(chart.timestamps),
        values=np.asarray(chart.values),
        limits=limits,
    )


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------
def figure3_feed_response(
    simulation: Optional[SimulationConfig] = None,
    anomaly_start_hour: float = 10.0,
    seed: int = 0,
    disturbance: str = "idv6",
    attack: str = "attack_xmv3",
    variable: str = "XMEAS(1)",
) -> FeedResponseFigure:
    """A variable under a disturbance and under an attack, side by side.

    Defaults reproduce Figure 3 — XMEAS(1) under IDV(6) vs. under an
    integrity attack closing XMV(3) — but any pair of registered (or
    user-registered) scenario names and any recorded variable can be
    compared.  Both anomalies start at ``anomaly_start_hour``; both runs
    end either at the simulation horizon or at the safety shutdown,
    whichever comes first — reproducing the phenomenon of Figure 3: the
    two situations are nearly indistinguishable when looking at XMEAS(1)
    alone.
    """
    simulation = simulation or SimulationConfig.fast(seed=seed)
    idv6_result = run_scenario(
        resolve_scenario(disturbance), simulation.with_seed(seed), anomaly_start_hour
    )
    attack_result = run_scenario(
        resolve_scenario(attack),
        simulation.with_seed(seed),
        anomaly_start_hour,
    )
    return FeedResponseFigure(
        variable=variable,
        anomaly_start_hour=anomaly_start_hour,
        idv6_time=idv6_result.process_data.timestamps,
        idv6_values=idv6_result.process_data.column(variable),
        idv6_shutdown_hour=idv6_result.shutdown_time_hours,
        attack_time=attack_result.process_data.timestamps,
        attack_values=attack_result.process_data.column(variable),
        attack_shutdown_hour=attack_result.shutdown_time_hours,
    )


# ----------------------------------------------------------------------
# Figures 4 and 5
# ----------------------------------------------------------------------
def omeda_figures(
    evaluations: Dict[str, ScenarioEvaluation], view: str
) -> Dict[str, OmedaFigure]:
    """oMEDA bar-chart panels of every evaluated scenario for one view.

    Works with any summary-like mapping — eager
    :class:`~repro.experiments.evaluation.ScenarioEvaluation` records or
    streaming :class:`~repro.experiments.analysis.ScenarioSummary` records —
    and derives each panel's caption from the evaluated scenario itself
    (falling back to the registry), so scenarios declared in a campaign
    spec render without touching figure code.
    """
    figures: Dict[str, OmedaFigure] = {}
    for name, evaluation in evaluations.items():
        names, contributions = evaluation.mean_omeda(view)
        scenario = getattr(evaluation, "scenario", None)
        figures[name] = OmedaFigure(
            scenario=name,
            view=view,
            variable_names=names,
            contributions=contributions,
            title=scenario.title if scenario is not None else "",
        )
    return figures


def figure4_omeda_controller(
    evaluations: Dict[str, ScenarioEvaluation]
) -> Dict[str, OmedaFigure]:
    """Figure 4: oMEDA plots of every scenario from the controller point of view."""
    return omeda_figures(evaluations, "controller")


def figure5_omeda_process(
    evaluations: Dict[str, ScenarioEvaluation]
) -> Dict[str, OmedaFigure]:
    """Figure 5: oMEDA plots of every scenario from the process point of view."""
    return omeda_figures(evaluations, "process")


# ----------------------------------------------------------------------
# ARL table (Section V text)
# ----------------------------------------------------------------------
def arl_table(evaluations: Dict[str, ScenarioEvaluation]) -> List[Dict[str, object]]:
    """Detection rate and ARL per scenario (the behaviour discussed in §V)."""
    rows: List[Dict[str, object]] = []
    for name, evaluation in evaluations.items():
        rows.append(
            {
                "scenario": name,
                "title": evaluation.scenario.title,
                "n_runs": evaluation.n_runs,
                "n_detected": evaluation.n_detected,
                "detection_rate": evaluation.detection_rate,
                "arl_hours": evaluation.arl_hours,
            }
        )
    return rows
