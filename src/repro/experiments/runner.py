"""Execution of calibration campaigns and evaluation scenarios.

This module assembles the full closed loop for one scenario — plant,
decentralized controller, sensor/actuator channels with the scenario's attack,
disturbance schedule and safety monitor — and runs it through
:class:`~repro.process.simulator.ClosedLoopSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.common.config import ExperimentConfig, SimulationConfig
from repro.common.exceptions import ConfigurationError
from repro.control.te_controller import TEDecentralizedController
from repro.datasets.dataset import ProcessDataset
from repro.experiments.scenarios import Scenario
from repro.network.attacks import AttackSchedule
from repro.network.channel import Channel
from repro.process.disturbances import DisturbanceSchedule
from repro.process.simulator import ClosedLoopSimulator, SimulationResult
from repro.te.constants import N_IDV, N_XMEAS, N_XMV
from repro.te.plant import TEPlant
from repro.te.safety import default_safety_monitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import CampaignEngine

__all__ = [
    "make_plant",
    "make_controller",
    "build_channels",
    "build_disturbance_schedule",
    "build_live_observers",
    "scenario_run_metadata",
    "run_scenario",
    "run_calibration_campaign",
    "CalibrationData",
]


def scenario_run_metadata(scenario: Scenario, anomaly_start_hour: float) -> dict:
    """The run-level metadata both simulation backends attach to results."""
    return {
        "scenario": scenario.name,
        "scenario_title": scenario.title,
        "scenario_kind": scenario.kind.value,
        "anomaly_start_hour": anomaly_start_hour if scenario.is_anomalous else None,
        "ground_truth": scenario.expected_ground_truth,
    }


def build_live_observers(
    scenario: Scenario,
    anomaly_start_hour: float,
    early_stop,
    live_analyzer,
) -> list:
    """The early-stop observer stack of one run (shared by both backends).

    Returns an empty list when no :class:`~repro.common.config.\
EarlyStopPolicy` is requested; otherwise a single
    :class:`~repro.live.observer.LiveRunObserver` scoring the run against
    the fitted ``live_analyzer``.
    """
    if early_stop is None:
        return []
    if live_analyzer is None:
        raise ConfigurationError(
            "early_stop needs a fitted live_analyzer to score the run"
        )
    # Imported lazily: repro.live sits on top of the experiments layer.
    from repro.live.monitor import LiveMonitor
    from repro.live.observer import LiveRunObserver

    live_monitor = LiveMonitor(
        live_analyzer,
        anomaly_start_hour=(anomaly_start_hour if scenario.is_anomalous else None),
        policy=early_stop,
    )
    return [LiveRunObserver(live_monitor)]


def make_plant(seed: int = 0, enable_process_variation: bool = True) -> TEPlant:
    """Construct a Tennessee-Eastman plant instance."""
    return TEPlant(seed=seed, enable_process_variation=enable_process_variation)


def make_controller() -> TEDecentralizedController:
    """Construct the default decentralized TE controller."""
    return TEDecentralizedController()


def build_disturbance_schedule(
    scenario: Scenario, anomaly_start_hour: float
) -> DisturbanceSchedule:
    """Disturbance schedule of a scenario's process-disturbance injections.

    Each :class:`~repro.experiments.injections.DisturbanceInjection` becomes
    one activation window; injections without an explicit ``start_hour``
    activate at the campaign's ``anomaly_start_hour``.
    """
    schedule = DisturbanceSchedule.none(N_IDV)
    for injection in scenario.disturbance_injections:
        schedule.add(
            injection.index,
            injection.onset(anomaly_start_hour),
            end_hour=injection.end_hour,
            magnitude=injection.magnitude,
        )
    return schedule


def build_channels(
    scenario: Scenario, anomaly_start_hour: float
) -> Tuple[Channel, Channel]:
    """Sensor and actuator channels with the scenario's attacks installed.

    Every channel injection of the composition contributes one attack to
    the channel it targets, so multi-stage scenarios (e.g. a replayed
    sensor masking a DoS'd valve) assemble without special cases.
    """
    sensor_attacks = AttackSchedule.none()
    actuator_attacks = AttackSchedule.none()
    for injection in scenario.channel_injections:
        attack = injection.build_attack(anomaly_start_hour)
        if injection.channel == "sensor":
            sensor_attacks.add(attack)
        else:
            actuator_attacks.add(attack)

    sensor_channel = Channel("sensors", N_XMEAS, sensor_attacks)
    actuator_channel = Channel("actuators", N_XMV, actuator_attacks)
    return sensor_channel, actuator_channel


def run_scenario(
    scenario: Scenario,
    simulation: SimulationConfig,
    anomaly_start_hour: float = 10.0,
    enable_safety: bool = True,
    observers: Sequence = (),
    early_stop=None,
    live_analyzer=None,
    observer_factories: Sequence = (),
) -> SimulationResult:
    """Run one scenario once and return both data views.

    ``observers`` are step-tap hooks forwarded to
    :meth:`ClosedLoopSimulator.run`.  ``early_stop`` (an
    :class:`~repro.common.config.EarlyStopPolicy`) plus a fitted
    ``live_analyzer`` attach a live monitor that scores the run while it
    simulates and truncates it once a detection is confirmed; the truncated
    data views are bitwise-identical to the corresponding prefix of the
    full-horizon run.

    ``observer_factories`` are callables invoked with the constructed
    :class:`ClosedLoopSimulator`; each returns an iterable of further
    observers, appended after ``observers`` and the early-stop stack.
    This is the seam for observers that need the simulator itself — the
    closed-loop response runner mutates controller and channels mid-run
    through it (see :meth:`repro.response.runner.ResponseRunner.bind`).
    """
    if scenario.is_anomalous and anomaly_start_hour >= simulation.duration_hours:
        raise ConfigurationError(
            "anomaly_start_hour must fall inside the simulation horizon"
        )
    plant = make_plant(seed=simulation.seed)
    controller = make_controller()
    sensor_channel, actuator_channel = build_channels(scenario, anomaly_start_hour)
    disturbances = build_disturbance_schedule(scenario, anomaly_start_hour)
    safety = default_safety_monitor(enabled=enable_safety)

    simulator = ClosedLoopSimulator(
        plant=plant,
        controller=controller,
        sensor_channel=sensor_channel,
        actuator_channel=actuator_channel,
        disturbances=disturbances,
        safety_monitor=safety,
    )
    metadata = scenario_run_metadata(scenario, anomaly_start_hour)
    observers = list(observers) + build_live_observers(
        scenario, anomaly_start_hour, early_stop, live_analyzer
    )
    for factory in observer_factories:
        observers.extend(factory(simulator))
    return simulator.run(simulation, metadata, observers=observers)


@dataclass
class CalibrationData:
    """Concatenated normal-operation data used to fit the MSPC models.

    Attributes
    ----------
    controller_data / process_data:
        Calibration datasets (identical in content since calibration runs are
        attack-free, but both are kept so each monitor is fitted on its own
        view, exactly as a deployed system would be).
    results:
        The individual run results, for inspection.  Empty when the campaign
        was run with ``keep_results=False`` (the streaming path), where the
        per-run arrays are released once concatenated.
    n_runs_executed:
        Number of calibration runs executed (also available when the per-run
        results were not retained).
    """

    controller_data: ProcessDataset
    process_data: ProcessDataset
    results: List[SimulationResult]
    n_runs_executed: int = 0

    def __post_init__(self) -> None:
        if self.n_runs_executed == 0:
            self.n_runs_executed = len(self.results)

    @property
    def n_runs(self) -> int:
        """Number of calibration runs."""
        return self.n_runs_executed


def run_calibration_campaign(
    config: ExperimentConfig,
    scenario: Optional[Scenario] = None,
    engine: Optional["CampaignEngine"] = None,
    keep_results: bool = True,
    chunk_size: Optional[int] = None,
) -> CalibrationData:
    """Run the attack-free calibration campaign of an experiment configuration.

    The runs stream out of a
    :class:`~repro.experiments.parallel.CampaignEngine` built from
    ``config.parallel`` (or the explicitly provided ``engine``) in chunks;
    per-run seeds are derived up front, so the resulting datasets are
    identical whichever backend, worker count or chunking executes them.
    Model fitting needs the concatenation of every run, so the concatenated
    matrices are inherently O(campaign); ``keep_results=False`` at least
    drops the per-run :class:`SimulationResult` objects once their arrays
    have been folded in, halving steady-state memory.
    """
    from repro.experiments.parallel import CampaignEngine, calibration_specs

    engine = engine or CampaignEngine(config.parallel)
    controller_parts: List[ProcessDataset] = []
    process_parts: List[ProcessDataset] = []
    results: List[SimulationResult] = []
    n_executed = 0
    for result in engine.iter_run(calibration_specs(config, scenario), chunk_size):
        controller_parts.append(result.controller_data)
        process_parts.append(result.process_data)
        n_executed += 1
        if keep_results:
            results.append(result)
    return CalibrationData(
        controller_data=ProcessDataset.concatenate(controller_parts),
        process_data=ProcessDataset.concatenate(process_parts),
        results=results,
        n_runs_executed=n_executed,
    )
