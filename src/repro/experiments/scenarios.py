"""Scenario definitions: named compositions of anomaly injections.

Section V of the paper defines four anomalous situations, all starting at the
10th simulation hour:

a) process disturbance IDV(6) — loss of the A feed;
b) integrity attack on XMV(3) — the attacker commands the A feed valve closed;
c) integrity attack on XMEAS(1) — the attacker forges a zero A feed reading;
d) Denial of Service on XMV(3) — the actuator keeps the last received value.

A fifth, attack- and disturbance-free scenario is used for calibration and as
the negative control.

Since the declarative-campaign redesign a :class:`Scenario` is no longer an
enum-plus-fields record but a **composition of injection primitives**
(:mod:`repro.experiments.injections`): the paper's scenarios are one-element
compositions, and arbitrary multi-stage anomalies (a disturbance masked by a
replayed sensor, a drift plus a DoS, …) are expressed by listing several
injections — in code or in a TOML/JSON campaign spec.  The historical
``kind`` / ``disturbance_index`` / ``target_*`` constructor keeps working as
a deprecation shim and is normalized into the equivalent injection
composition, so old and new construction paths produce identical scenarios
(and identical campaign cache keys).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.deprecation import warn_once
from repro.common.exceptions import ConfigurationError
from repro.experiments.injections import (
    ChannelInjection,
    DisturbanceInjection,
    DoSInjection,
    Injection,
    IntegrityInjection,
    injections_from_mappings,
)

__all__ = [
    "ScenarioKind",
    "Scenario",
    "GROUND_TRUTHS",
    "normal_scenario",
    "disturbance_idv6_scenario",
    "integrity_attack_on_xmv3_scenario",
    "integrity_attack_on_xmeas1_scenario",
    "dos_attack_on_xmv3_scenario",
    "paper_scenarios",
]

GROUND_TRUTHS = ("normal", "disturbance", "attack")


class ScenarioKind(enum.Enum):
    """The nature of the anomaly injected in a scenario.

    Kinds are *derived* from the injection composition nowadays; the enum is
    kept for reporting and for the legacy constructor shim.  Compositions
    that do not match one of the historical single-injection patterns are
    :attr:`COMPOSITE`.
    """

    NORMAL = "normal"
    DISTURBANCE = "disturbance"
    INTEGRITY_SENSOR = "integrity attack on a sensor"
    INTEGRITY_ACTUATOR = "integrity attack on an actuator"
    DOS_ACTUATOR = "denial of service on an actuator"
    COMPOSITE = "composite"


def _derive_legacy_view(
    injections: Tuple[Injection, ...]
) -> Dict[str, Any]:
    """Map an injection composition onto the historical field set.

    Single-injection compositions with campaign-default timing fold back
    onto the exact pre-redesign ``kind``/index fields, which keeps every
    legacy consumer (reports, metadata, user code) working unchanged;
    everything else is :attr:`ScenarioKind.COMPOSITE`.
    """
    view: Dict[str, Any] = {
        "kind": ScenarioKind.COMPOSITE,
        "disturbance_index": None,
        "target_xmeas": None,
        "target_xmv": None,
        "injected_value": None,
    }
    if not injections:
        view["kind"] = ScenarioKind.NORMAL
        return view
    if len(injections) > 1:
        return view
    injection = injections[0]
    if injection.start_hour is not None or injection.end_hour is not None:
        return view
    if isinstance(injection, DisturbanceInjection):
        if injection.magnitude == 1.0:
            view["kind"] = ScenarioKind.DISTURBANCE
            view["disturbance_index"] = injection.index
        return view
    if isinstance(injection, IntegrityInjection):
        if injection.channel == "sensor":
            view["kind"] = ScenarioKind.INTEGRITY_SENSOR
            view["target_xmeas"] = injection.target
        else:
            view["kind"] = ScenarioKind.INTEGRITY_ACTUATOR
            view["target_xmv"] = injection.target
        view["injected_value"] = injection.value
        return view
    if isinstance(injection, DoSInjection) and injection.channel == "actuator":
        view["kind"] = ScenarioKind.DOS_ACTUATOR
        view["target_xmv"] = injection.target
    return view


def _injections_from_legacy(
    kind: ScenarioKind,
    disturbance_index: Optional[int],
    target_xmeas: Optional[int],
    target_xmv: Optional[int],
    injected_value: Optional[float],
) -> Tuple[Injection, ...]:
    """The injection composition equivalent to a legacy field set."""
    if kind is ScenarioKind.NORMAL:
        return ()
    if kind is ScenarioKind.DISTURBANCE:
        if disturbance_index is None:
            raise ConfigurationError("disturbance scenarios need a disturbance_index")
        return (DisturbanceInjection(disturbance_index),)
    if kind is ScenarioKind.INTEGRITY_SENSOR:
        if target_xmeas is None:
            raise ConfigurationError("sensor integrity attacks need target_xmeas")
        return (
            IntegrityInjection(
                "sensor",
                target_xmeas,
                0.0 if injected_value is None else float(injected_value),
            ),
        )
    if kind is ScenarioKind.INTEGRITY_ACTUATOR:
        if target_xmv is None:
            raise ConfigurationError("actuator attacks need target_xmv")
        return (
            IntegrityInjection(
                "actuator",
                target_xmv,
                0.0 if injected_value is None else float(injected_value),
            ),
        )
    if kind is ScenarioKind.DOS_ACTUATOR:
        if target_xmv is None:
            raise ConfigurationError("actuator attacks need target_xmv")
        return (DoSInjection("actuator", target_xmv),)
    raise ConfigurationError(
        "the legacy constructor cannot express composite scenarios; "
        "pass injections=[...] instead"
    )


@dataclass(frozen=True)
class Scenario:
    """One evaluation scenario: a named composition of injections.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"idv6"``.
    title:
        Human-readable title used in reports and figure captions (defaults
        to ``name``).
    kind:
        Derived :class:`ScenarioKind`.  Passing it explicitly (together
        with the ``disturbance_index`` / ``target_*`` / ``injected_value``
        fields) is the **deprecated** pre-redesign constructor; it still
        works, warns once, and is normalized into ``injections``.
    expected_ground_truth:
        ``"disturbance"``, ``"attack"`` or ``"normal"`` — used by the
        distinguishability benchmarks.  Derived from the composition when
        not given.
    injections:
        The anomaly primitives of this scenario, applied together
        (see :mod:`repro.experiments.injections`).  Mappings (e.g. parsed
        from a spec file) are accepted and built into primitives.
    """

    name: str
    title: str = ""
    kind: Optional[ScenarioKind] = None
    disturbance_index: Optional[int] = None
    target_xmeas: Optional[int] = None
    target_xmv: Optional[int] = None
    injected_value: Optional[float] = None
    expected_ground_truth: Optional[str] = None
    injections: Tuple[Injection, ...] = field(default=())

    def __post_init__(self) -> None:
        injections = injections_from_mappings(self.injections)
        if self.kind is not None:
            if injections:
                raise ConfigurationError(
                    "pass either the legacy kind fields or injections, not both"
                )
            warn_once(
                "Scenario(kind=...)",
                "constructing Scenario from kind/disturbance_index/target_* "
                "fields is deprecated; compose injection primitives instead "
                "(see repro.experiments.injections)",
                stacklevel=4,
            )
            injections = _injections_from_legacy(
                self.kind,
                self.disturbance_index,
                self.target_xmeas,
                self.target_xmv,
                self.injected_value,
            )
        object.__setattr__(self, "injections", injections)
        # Canonicalize the legacy view from the composition, whichever
        # constructor ran: both paths then yield field-identical scenarios
        # (and identical campaign cache keys).
        for key, value in _derive_legacy_view(injections).items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "title", str(self.title) or self.name)
        if self.expected_ground_truth is None:
            object.__setattr__(self, "expected_ground_truth", self._derived_truth())
        if self.expected_ground_truth not in GROUND_TRUTHS:
            raise ConfigurationError(
                f"expected_ground_truth must be one of {GROUND_TRUTHS}, "
                f"got {self.expected_ground_truth!r}"
            )

    def _derived_truth(self) -> str:
        if any(isinstance(i, ChannelInjection) for i in self.injections):
            return "attack"
        if self.injections:
            return "disturbance"
        return "normal"

    # ------------------------------------------------------------------
    @property
    def is_attack(self) -> bool:
        """Whether the scenario tampers with a channel (vs. pure disturbance)."""
        return any(isinstance(i, ChannelInjection) for i in self.injections)

    @property
    def is_anomalous(self) -> bool:
        """Whether the scenario injects any anomaly at all."""
        return bool(self.injections)

    @property
    def disturbance_injections(self) -> Tuple[DisturbanceInjection, ...]:
        """The process-disturbance primitives of this scenario."""
        return tuple(
            i for i in self.injections if isinstance(i, DisturbanceInjection)
        )

    @property
    def channel_injections(self) -> Tuple[ChannelInjection, ...]:
        """The channel-tampering primitives of this scenario."""
        return tuple(i for i in self.injections if isinstance(i, ChannelInjection))

    # ------------------------------------------------------------------
    def scaled(self, magnitude: float) -> "Scenario":
        """This scenario with every injection's intensity scaled.

        Used by campaign-spec magnitude sweeps; the variant is renamed
        ``<name>@x<magnitude>`` so sweep results stay distinguishable.
        """
        magnitude = float(magnitude)
        return Scenario(
            name=f"{self.name}@x{magnitude:g}",
            title=f"{self.title} (magnitude x{magnitude:g})",
            expected_ground_truth=self.expected_ground_truth,
            injections=tuple(i.scaled(magnitude) for i in self.injections),
        )

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON/TOML-ready mapping describing this scenario.

        Only the canonical content (name, title, ground truth, injections)
        is serialized; the legacy view is re-derived on load.
        """
        return {
            "name": self.name,
            "title": self.title,
            "ground_truth": self.expected_ground_truth,
            "injections": [i.to_mapping() for i in self.injections],
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "Scenario":
        """Build a scenario from its :meth:`to_mapping` form."""
        allowed = {"name", "title", "ground_truth", "injections"}
        unknown = sorted(set(mapping) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} in scenario mapping "
                f"(allowed: {sorted(allowed)})"
            )
        if "name" not in mapping:
            raise ConfigurationError("a scenario mapping needs a 'name'")
        return cls(
            name=str(mapping["name"]),
            title=str(mapping.get("title", "")),
            expected_ground_truth=mapping.get("ground_truth"),
            injections=injections_from_mappings(mapping.get("injections", ())),
        )


def normal_scenario() -> Scenario:
    """Attack- and disturbance-free operation (calibration / negative control)."""
    return Scenario(name="normal", title="Normal operation")


def disturbance_idv6_scenario() -> Scenario:
    """Scenario (a): process disturbance IDV(6), loss of the A feed."""
    return Scenario(
        name="idv6",
        title="Disturbance IDV(6): A feed loss",
        injections=(DisturbanceInjection(6),),
    )


def integrity_attack_on_xmv3_scenario() -> Scenario:
    """Scenario (b): integrity attack commanding the A feed valve closed."""
    return Scenario(
        name="attack_xmv3",
        title="Integrity attack on XMV(3): close the A feed valve",
        injections=(IntegrityInjection("actuator", 3, 0.0),),
    )


def integrity_attack_on_xmeas1_scenario() -> Scenario:
    """Scenario (c): integrity attack forging a zero A feed measurement."""
    return Scenario(
        name="attack_xmeas1",
        title="Integrity attack on XMEAS(1): forge a zero A feed reading",
        injections=(IntegrityInjection("sensor", 1, 0.0),),
    )


def dos_attack_on_xmv3_scenario() -> Scenario:
    """Scenario (d): DoS on XMV(3), the actuator holds the last received value."""
    return Scenario(
        name="dos_xmv3",
        title="DoS attack on XMV(3): hold the last received valve command",
        injections=(DoSInjection("actuator", 3),),
    )


def paper_scenarios() -> Tuple[Scenario, ...]:
    """The four anomalous scenarios of the paper's evaluation, in order."""
    return (
        disturbance_idv6_scenario(),
        integrity_attack_on_xmv3_scenario(),
        integrity_attack_on_xmeas1_scenario(),
        dos_attack_on_xmv3_scenario(),
    )
