"""The evaluation scenarios of the paper.

Section V of the paper defines four anomalous situations, all starting at the
10th simulation hour:

a) process disturbance IDV(6) — loss of the A feed;
b) integrity attack on XMV(3) — the attacker commands the A feed valve closed;
c) integrity attack on XMEAS(1) — the attacker forges a zero A feed reading;
d) Denial of Service on XMV(3) — the actuator keeps the last received value.

A fifth, attack- and disturbance-free scenario is used for calibration and as
the negative control.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.exceptions import ConfigurationError

__all__ = [
    "ScenarioKind",
    "Scenario",
    "normal_scenario",
    "disturbance_idv6_scenario",
    "integrity_attack_on_xmv3_scenario",
    "integrity_attack_on_xmeas1_scenario",
    "dos_attack_on_xmv3_scenario",
    "paper_scenarios",
]


class ScenarioKind(enum.Enum):
    """The nature of the anomaly injected in a scenario."""

    NORMAL = "normal"
    DISTURBANCE = "disturbance"
    INTEGRITY_SENSOR = "integrity attack on a sensor"
    INTEGRITY_ACTUATOR = "integrity attack on an actuator"
    DOS_ACTUATOR = "denial of service on an actuator"


@dataclass(frozen=True)
class Scenario:
    """One evaluation scenario.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"idv6"``.
    title:
        Human-readable title used in reports and figure captions.
    kind:
        The anomaly type.
    disturbance_index:
        1-based IDV index for disturbance scenarios.
    target_xmeas / target_xmv:
        1-based index of the attacked sensor / actuator for attack scenarios.
    injected_value:
        Value injected by integrity attacks (ignored for DoS).
    expected_ground_truth:
        ``"disturbance"``, ``"attack"`` or ``"normal"`` — used by the
        distinguishability benchmarks.
    """

    name: str
    title: str
    kind: ScenarioKind
    disturbance_index: Optional[int] = None
    target_xmeas: Optional[int] = None
    target_xmv: Optional[int] = None
    injected_value: Optional[float] = None
    expected_ground_truth: str = "normal"

    def __post_init__(self) -> None:
        if self.kind is ScenarioKind.DISTURBANCE and self.disturbance_index is None:
            raise ConfigurationError("disturbance scenarios need a disturbance_index")
        if self.kind is ScenarioKind.INTEGRITY_SENSOR and self.target_xmeas is None:
            raise ConfigurationError("sensor integrity attacks need target_xmeas")
        if self.kind in (ScenarioKind.INTEGRITY_ACTUATOR, ScenarioKind.DOS_ACTUATOR) and (
            self.target_xmv is None
        ):
            raise ConfigurationError("actuator attacks need target_xmv")

    @property
    def is_attack(self) -> bool:
        """Whether the scenario is an attack (as opposed to a disturbance)."""
        return self.kind in (
            ScenarioKind.INTEGRITY_SENSOR,
            ScenarioKind.INTEGRITY_ACTUATOR,
            ScenarioKind.DOS_ACTUATOR,
        )

    @property
    def is_anomalous(self) -> bool:
        """Whether the scenario injects any anomaly at all."""
        return self.kind is not ScenarioKind.NORMAL


def normal_scenario() -> Scenario:
    """Attack- and disturbance-free operation (calibration / negative control)."""
    return Scenario(
        name="normal",
        title="Normal operation",
        kind=ScenarioKind.NORMAL,
        expected_ground_truth="normal",
    )


def disturbance_idv6_scenario() -> Scenario:
    """Scenario (a): process disturbance IDV(6), loss of the A feed."""
    return Scenario(
        name="idv6",
        title="Disturbance IDV(6): A feed loss",
        kind=ScenarioKind.DISTURBANCE,
        disturbance_index=6,
        expected_ground_truth="disturbance",
    )


def integrity_attack_on_xmv3_scenario() -> Scenario:
    """Scenario (b): integrity attack commanding the A feed valve closed."""
    return Scenario(
        name="attack_xmv3",
        title="Integrity attack on XMV(3): close the A feed valve",
        kind=ScenarioKind.INTEGRITY_ACTUATOR,
        target_xmv=3,
        injected_value=0.0,
        expected_ground_truth="attack",
    )


def integrity_attack_on_xmeas1_scenario() -> Scenario:
    """Scenario (c): integrity attack forging a zero A feed measurement."""
    return Scenario(
        name="attack_xmeas1",
        title="Integrity attack on XMEAS(1): forge a zero A feed reading",
        kind=ScenarioKind.INTEGRITY_SENSOR,
        target_xmeas=1,
        injected_value=0.0,
        expected_ground_truth="attack",
    )


def dos_attack_on_xmv3_scenario() -> Scenario:
    """Scenario (d): DoS on XMV(3), the actuator holds the last received value."""
    return Scenario(
        name="dos_xmv3",
        title="DoS attack on XMV(3): hold the last received valve command",
        kind=ScenarioKind.DOS_ACTUATOR,
        target_xmv=3,
        expected_ground_truth="attack",
    )


def paper_scenarios() -> Tuple[Scenario, ...]:
    """The four anomalous scenarios of the paper's evaluation, in order."""
    return (
        disturbance_idv6_scenario(),
        integrity_attack_on_xmv3_scenario(),
        integrity_attack_on_xmeas1_scenario(),
        dos_attack_on_xmv3_scenario(),
    )
