"""Streaming, sharded analysis of campaign results.

PR 1 parallelised the *simulation* stage of the paper's evaluation; this
module does the same for the *analysis* stage (MSPC scoring, oMEDA diagnosis,
ARL aggregation) while bounding memory:

* campaign results are consumed as an **iterator** — chunked loads from the
  NPZ :class:`~repro.experiments.parallel.ResultCache` instead of
  whole-campaign lists; on the streaming path cached runs are handed to the
  scoring workers *as paths*, so the NPZ decompression itself is sharded and
  the parent process never materializes the run arrays;
* per-run MSPC scoring + oMEDA diagnosis fan out over a worker pool
  (:class:`AnalysisEngine`), with workers returning compact
  :class:`~repro.anomaly.diagnosis.DiagnosisSummary` records instead of full
  per-observation charts;
* aggregation happens in **incremental reducers** (:class:`ScenarioReducer`:
  detection counts, ARL, classification tallies, mean-oMEDA) so a finished
  run can be dropped immediately.

Peak memory of a streaming campaign is therefore O(chunk), not O(campaign),
and the produced :class:`ScenarioSummary` tables are bitwise-identical to the
eager :class:`~repro.experiments.evaluation.Evaluation` path (which itself
sits on these reducers).
"""

from __future__ import annotations

import numbers
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.anomaly.diagnosis import (
    DiagnosisSummary,
    DualLevelAnalyzer,
    DualLevelDiagnosis,
)
from repro.common.config import EarlyStopPolicy, ExperimentConfig, ParallelConfig
from repro.common.exceptions import ConfigurationError
from repro.datasets.io import peek_result_npz
from repro.experiments.parallel import CampaignEngine, CampaignStats, scenario_specs
from repro.experiments.scenarios import Scenario, paper_scenarios
from repro.mspc.arl import RunLengthAccumulator, run_length
from repro.mspc.model import OmedaResult
from repro.obs.logs import get_logger, log_context
from repro.obs.trace import span as obs_span
from repro.process.simulator import SimulationResult

__all__ = [
    "AnalyzedRun",
    "AnalysisStats",
    "AnalysisEngine",
    "OmedaMeanReducer",
    "ScenarioReducer",
    "ScenarioSummary",
    "ScoredRun",
    "AnalysisPipeline",
    "build_arl_table",
    "build_classification_table",
]

_LOG = get_logger("analysis")

DiagnosisLike = Union[DualLevelDiagnosis, DiagnosisSummary]

#: What the scoring stage accepts: an in-memory result, or the path of an
#: NPZ :class:`~repro.experiments.parallel.ResultCache` entry that the
#: *worker* loads — so cached campaigns are re-analyzed without the parent
#: process ever materializing the run data.
ResultSource = Union[SimulationResult, str, Path]


# ----------------------------------------------------------------------
# Per-run record
# ----------------------------------------------------------------------
@dataclass
class AnalyzedRun:
    """The analysis outcome of one run of one scenario.

    ``result`` is retained only when the pipeline is asked to keep full
    simulation results (the eager compatibility path); the streaming path
    leaves it ``None`` so the run's arrays can be freed as soon as the
    reducers have consumed this record.
    """

    scenario_name: str
    run_index: int
    diagnosis: DiagnosisLike
    run_length: Optional[float]
    shutdown_time_hours: Optional[float]
    result: Optional[SimulationResult] = None


# ----------------------------------------------------------------------
# Sharded scoring engine
# ----------------------------------------------------------------------
class ScoredRun(NamedTuple):
    """What the scoring stage returns per run: verdict plus shutdown state."""

    diagnosis: DiagnosisLike
    shutdown_time_hours: Optional[float]


# The fitted analyzer of this worker process, installed once by the pool
# initializer so it is pickled per *worker*, not per task.
_WORKER_ANALYZER: Optional[DualLevelAnalyzer] = None


def _init_analysis_worker(analyzer: DualLevelAnalyzer) -> None:
    """Pool initializer: pin the fitted analyzer in the worker process."""
    global _WORKER_ANALYZER
    _WORKER_ANALYZER = analyzer


def _analyze_one(task) -> ScoredRun:
    """Score one run (top-level so it is picklable by worker pools).

    ``task`` carries ``None`` as its analyzer when running on a pool (the
    initializer already installed it); the serial path passes the analyzer
    directly.  A path source is loaded from the NPZ cache *inside the
    worker*, so both the decompression and the scoring parallelize and the
    parent process never holds the run's arrays.
    """
    analyzer, source, anomaly_start_hour, summarize = task
    if analyzer is None:
        analyzer = _WORKER_ANALYZER
    if isinstance(source, (str, Path)):
        from repro.datasets.io import load_result_npz

        result = load_result_npz(source)
    else:
        result = source
    diagnosis = analyzer.analyze(
        result.controller_data,
        result.process_data,
        anomaly_start_hour=anomaly_start_hour,
    )
    if summarize:
        diagnosis = diagnosis.summarize()
    return ScoredRun(diagnosis, result.shutdown_time_hours)


@dataclass
class AnalysisStats:
    """What the analysis engine actually did for the last stream it scored."""

    n_runs: int = 0
    n_workers: int = 1
    backend: str = "serial"
    wall_seconds: float = 0.0

    def absorb(self, other: "AnalysisStats") -> "AnalysisStats":
        """Fold another stream's stats into this one (multi-scenario sweeps)."""
        self.n_runs += other.n_runs
        self.n_workers = max(self.n_workers, other.n_workers)
        if other.backend in ("process", "batch"):
            self.backend = other.backend
        self.wall_seconds += other.wall_seconds
        return self


class AnalysisEngine:
    """Fans per-run MSPC scoring + oMEDA diagnosis out over a worker pool.

    Mirrors :class:`~repro.experiments.parallel.CampaignEngine`, but for the
    analysis stage: the fitted analyzer and each run's two data views are
    shipped to a worker, which returns the diagnosis.  Scoring is a pure
    deterministic function of (analyzer, data), so serial and parallel
    execution produce identical diagnoses, and results are yielded in input
    order regardless of completion order.

    The pool is created lazily and persists across chunks; call
    :meth:`close` (or use the instance as a context manager) to release it.
    """

    def __init__(
        self,
        analyzer: DualLevelAnalyzer,
        config: Optional[ParallelConfig] = None,
    ):
        self.analyzer = analyzer
        self.config = config or ParallelConfig()
        self.last_stats = AnalysisStats()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_size = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "AnalysisEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (a later map creates a fresh one)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_size = 0

    # ------------------------------------------------------------------
    def map(
        self,
        sources: Iterable[ResultSource],
        anomaly_start_hour: Union[
            Optional[float], Sequence[Optional[float]]
        ] = None,
        summarize: bool = True,
        chunk_size: Optional[int] = None,
    ) -> Iterator[ScoredRun]:
        """Score a stream of result sources, yielding verdicts in input order.

        The stream is consumed in chunks of ``chunk_size`` (default
        :attr:`ParallelConfig.resolved_chunk_size`), so at most one chunk of
        sources is alive in this process at a time.  A source may be an
        in-memory :class:`SimulationResult` or the path of an NPZ cache
        entry, which the worker loads itself; with ``summarize=True``
        workers return :class:`DiagnosisSummary` records (a few hundred
        bytes) instead of full per-observation charts, so for a fully
        cached campaign neither the inputs nor the outputs of the pool ever
        transit the parent process.  ``anomaly_start_hour`` may be a single
        value for the whole stream or one value per source (multi-scenario
        sweeps mixing anomalous and normal runs).
        """
        size = (
            int(chunk_size)
            if chunk_size is not None
            else self.config.resolved_chunk_size
        )
        if size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        stats = AnalysisStats(backend="serial", n_workers=1)
        # Numeric scalars (incl. numpy scalar types, which register with
        # numbers.Number) and None are a single start for the whole stream;
        # anything else — list, tuple, ndarray, range — is one per source.
        if anomaly_start_hour is None or isinstance(
            anomaly_start_hour, numbers.Number
        ):
            starts: Optional[Iterator[Optional[float]]] = None
        else:
            starts = iter(anomaly_start_hour)
        try:
            iterator = iter(sources)
            while True:
                chunk: List[Tuple[ResultSource, Optional[float]]] = []
                for source in iterator:
                    if starts is not None:
                        try:
                            start = next(starts)
                        except StopIteration:
                            raise ValueError(
                                "anomaly_start_hour sequence is shorter than "
                                "the source stream"
                            ) from None
                    else:
                        start = anomaly_start_hour
                    chunk.append((source, start))
                    if len(chunk) >= size:
                        break
                if not chunk:
                    break
                stats.n_runs += len(chunk)
                # Time only the scoring itself: pulling sources from the
                # iterator may include simulation (the engine's stream), and
                # the consumer's reducer work happens between yields.
                scoring_started = time.perf_counter()
                with obs_span(
                    "analysis.score_chunk", n_runs=len(chunk)
                ) as score_span:
                    scored = self._score_chunk(chunk, summarize, stats)
                    score_span.annotate(backend=stats.backend)
                stats.wall_seconds += time.perf_counter() - scoring_started
                yield from scored
            if starts is not None:
                leftover = object()
                if next(starts, leftover) is not leftover:
                    raise ValueError(
                        "anomaly_start_hour sequence is longer than the "
                        "source stream"
                    )
        finally:
            self.last_stats = stats

    def _score_chunk(
        self,
        chunk: List[Tuple[ResultSource, Optional[float]]],
        summarize: bool,
        stats: AnalysisStats,
    ) -> List[ScoredRun]:
        n_workers = min(self.config.resolved_workers, len(chunk))
        # The batch backend vectorizes *simulation*; scoring still fans out
        # over the process pool whenever workers allow.
        use_pool = (
            self.config.backend in ("process", "batch")
            and n_workers > 1
            and len(chunk) > 1
        )
        if not use_pool:
            return [
                _analyze_one((self.analyzer, source, start, summarize))
                for source, start in chunk
            ]

        if self._pool is not None and self._pool_size < n_workers:
            # A later chunk outgrew the pool: rebuild at the larger size.
            self.close()
        if self._pool is None:
            # The initializer ships the analyzer once per worker; the pool is
            # bound to the analyzer it was created with (close() to rebind).
            # Sized to the chunk at hand: workers beyond it would only idle.
            self._pool = ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_init_analysis_worker,
                initargs=(self.analyzer,),
            )
            self._pool_size = n_workers
        futures = {
            self._pool.submit(_analyze_one, (None, source, start, summarize)): index
            for index, (source, start) in enumerate(chunk)
        }
        scored: List[Optional[ScoredRun]] = [None] * len(chunk)
        for future in as_completed(futures):
            scored[futures[future]] = future.result()
        stats.backend = "process"
        stats.n_workers = max(stats.n_workers, n_workers)
        return scored  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Incremental reducers
# ----------------------------------------------------------------------
class OmedaMeanReducer:
    """Accumulates per-view oMEDA vectors and averages them at the end.

    The vectors themselves are retained (one small array of per-variable
    contributions per run) so the final reduction can use the exact
    ``np.mean(np.vstack(...), axis=0)`` of the eager path — bitwise-identical
    output for a few hundred bytes per run.
    """

    def __init__(self) -> None:
        self._vectors: List[np.ndarray] = []
        self._names: Optional[Tuple[str, ...]] = None

    def update(self, omeda: Optional[OmedaResult]) -> None:
        """Record one run's oMEDA diagnosis (``None`` when unavailable)."""
        if omeda is None:
            return
        self._vectors.append(np.asarray(omeda.contributions, dtype=float))
        self._names = omeda.variable_names

    @property
    def n_vectors(self) -> int:
        """Number of diagnoses recorded so far."""
        return len(self._vectors)

    def finalize(self) -> Tuple[Tuple[str, ...], np.ndarray]:
        """Variable names and the mean oMEDA vector over recorded runs."""
        if not self._vectors or self._names is None:
            return tuple(), np.array([])
        return self._names, np.mean(np.vstack(self._vectors), axis=0)


class ScenarioReducer:
    """Streaming aggregation of one scenario's runs.

    Consumes :class:`AnalyzedRun` records one at a time and maintains the
    aggregates the paper's tables need — detection counts and ARL
    (:class:`~repro.mspc.arl.RunLengthAccumulator`), classification tallies,
    false-alarm counts, shutdown times and per-view mean-oMEDA — without
    keeping any per-run simulation data alive.
    """

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self._run_lengths = RunLengthAccumulator()
        self._counts: Dict[str, int] = {}
        self._false_alarms = 0
        self._shutdown_times: List[Optional[float]] = []
        self._omeda = {
            "controller": OmedaMeanReducer(),
            "process": OmedaMeanReducer(),
        }

    def update(self, run: AnalyzedRun) -> None:
        """Fold one analyzed run into the aggregates."""
        diagnosis = run.diagnosis
        self._run_lengths.update(run.run_length)
        key = diagnosis.classification.value
        self._counts[key] = self._counts.get(key, 0) + 1
        if diagnosis.metadata.get("false_alarm_time_hours") is not None:
            self._false_alarms += 1
        self._shutdown_times.append(run.shutdown_time_hours)
        self._omeda["controller"].update(diagnosis.controller_omeda)
        self._omeda["process"].update(diagnosis.process_omeda)

    @property
    def n_runs(self) -> int:
        """Number of runs folded in so far."""
        return self._run_lengths.n_runs

    def summary(self) -> "ScenarioSummary":
        """Finalize the aggregates into a :class:`ScenarioSummary`."""
        return ScenarioSummary(
            scenario=self.scenario,
            run_lengths=self._run_lengths.run_lengths,
            counts=dict(self._counts),
            false_alarm_count=self._false_alarms,
            shutdown_times_hours=list(self._shutdown_times),
            omeda_means={
                view: reducer.finalize() for view, reducer in self._omeda.items()
            },
        )


# eq=False: omeda_means holds numpy arrays, whose elementwise == would make
# the generated __eq__ raise; compare the table fields explicitly instead.
@dataclass(eq=False)
class ScenarioSummary:
    """Aggregates of one scenario — the streaming counterpart of
    :class:`~repro.experiments.evaluation.ScenarioEvaluation`.

    Exposes the same table-facing API (``n_runs``, ``n_detected``,
    ``detection_rate``, ``arl_hours``, ``n_false_alarms``, ``mean_omeda``,
    ``classification_counts``, ``shutdown_times``) while holding only
    per-run scalars and per-view mean vectors, never simulation data.
    """

    scenario: Scenario
    run_lengths: List[Optional[float]]
    counts: Dict[str, int] = field(default_factory=dict)
    false_alarm_count: int = 0
    shutdown_times_hours: List[Optional[float]] = field(default_factory=list)
    omeda_means: Dict[str, Tuple[Tuple[str, ...], np.ndarray]] = field(
        default_factory=dict
    )

    def _accumulator(self) -> RunLengthAccumulator:
        """The stored run lengths, replayed through the canonical reducer."""
        accumulator = RunLengthAccumulator()
        for length in self.run_lengths:
            accumulator.update(length)
        return accumulator

    @property
    def n_runs(self) -> int:
        """Number of runs aggregated."""
        return len(self.run_lengths)

    @property
    def n_detected(self) -> int:
        """Number of runs in which the anomaly was detected."""
        return self._accumulator().n_detected

    @property
    def detection_rate(self) -> float:
        """Fraction of runs in which the anomaly was detected."""
        return self._accumulator().detection_rate

    @property
    def n_false_alarms(self) -> int:
        """Runs in which a detection fired before the anomaly even began."""
        return self.false_alarm_count

    @property
    def arl_hours(self) -> Optional[float]:
        """Average Run Length over the detected runs, in hours."""
        return self._accumulator().arl_hours

    def mean_omeda(self, view: str) -> Tuple[Tuple[str, ...], np.ndarray]:
        """Average oMEDA vector over runs for ``view`` ("controller"/"process")."""
        if view not in self.omeda_means:
            return tuple(), np.array([])
        return self.omeda_means[view]

    def classification_counts(self) -> Dict[str, int]:
        """How many runs were classified into each anomaly class."""
        return dict(self.counts)

    def shutdown_times(self) -> List[Optional[float]]:
        """Per-run safety shutdown time (None when the run completed)."""
        return list(self.shutdown_times_hours)

    # ------------------------------------------------------------------
    def to_mapping(self) -> Dict[str, object]:
        """A JSON-safe mapping capturing this summary exactly.

        Everything a summary holds is scalars and mean vectors, so the wire
        form round-trips losslessly: ``from_mapping(to_mapping())`` rebuilds
        a summary whose every table-facing accessor agrees with the
        original.  This is what lets campaign results cross the REST
        boundary of :mod:`repro.service`.
        """
        return {
            "scenario": self.scenario.to_mapping(),
            "run_lengths": [
                None if length is None else float(length)
                for length in self.run_lengths
            ],
            "counts": {str(key): int(value) for key, value in self.counts.items()},
            "false_alarm_count": int(self.false_alarm_count),
            "shutdown_times_hours": [
                None if value is None else float(value)
                for value in self.shutdown_times_hours
            ],
            "omeda_means": {
                view: {
                    "names": list(names),
                    "values": [float(v) for v in values],
                }
                for view, (names, values) in self.omeda_means.items()
            },
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "ScenarioSummary":
        """Rebuild a summary from its :meth:`to_mapping` form."""
        omeda_means = {
            str(view): (
                tuple(str(name) for name in entry["names"]),
                np.asarray(entry["values"], dtype=float),
            )
            for view, entry in dict(mapping.get("omeda_means", {})).items()
        }
        return cls(
            scenario=Scenario.from_mapping(mapping["scenario"]),
            run_lengths=[
                None if length is None else float(length)
                for length in mapping.get("run_lengths", [])
            ],
            counts={
                str(key): int(value)
                for key, value in dict(mapping.get("counts", {})).items()
            },
            false_alarm_count=int(mapping.get("false_alarm_count", 0)),
            shutdown_times_hours=[
                None if value is None else float(value)
                for value in mapping.get("shutdown_times_hours", [])
            ],
            omeda_means=omeda_means,
        )


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
class AnalysisPipeline:
    """Streams a campaign through simulation, sharded scoring and reducers.

    Parameters
    ----------
    analyzer:
        A fitted :class:`DualLevelAnalyzer` (both views calibrated).
    config:
        Campaign configuration; ``config.parallel`` supplies worker count,
        chunk size and cache settings for both stages.
    engine:
        Optional pre-built simulation engine (shared with
        :class:`~repro.experiments.evaluation.Evaluation` so cache state and
        stats are visible to the caller).
    summarize:
        When ``True`` (the streaming default) workers return compact
        :class:`DiagnosisSummary` records; ``False`` retains the full
        :class:`DualLevelDiagnosis` per run.
    keep_results:
        When ``True`` each :class:`AnalyzedRun` carries its
        :class:`SimulationResult`; peak memory then grows with the campaign
        again, so this is only meant for the eager compatibility path.
    early_stop:
        Optional :class:`~repro.common.config.EarlyStopPolicy`: anomalous
        scenarios' runs are then live-monitored while they simulate and
        truncated once a detection is confirmed (the engine needs the
        fitted analyzer installed via
        :meth:`CampaignEngine.set_live_analyzer`; the pipeline installs its
        own analyzer automatically).  Detection verdicts are unaffected —
        the truncation point is strictly after the confirming sample.
    """

    def __init__(
        self,
        analyzer: DualLevelAnalyzer,
        config: ExperimentConfig,
        engine: Optional[CampaignEngine] = None,
        chunk_size: Optional[int] = None,
        summarize: bool = True,
        keep_results: bool = False,
        early_stop: Optional[EarlyStopPolicy] = None,
    ):
        self.config = config
        self.analyzer = analyzer
        self.engine = engine or CampaignEngine(config.parallel)
        self.analysis_engine = AnalysisEngine(analyzer, config.parallel)
        self.chunk_size = chunk_size
        self.summarize = summarize
        self.keep_results = keep_results
        self.early_stop = early_stop
        if early_stop is not None:
            self.engine.set_live_analyzer(analyzer)
        # Accumulated over every scenario streamed through this pipeline
        # (each engine/analysis ``last_stats`` only covers one scenario).
        self.simulation_stats = CampaignStats()
        self.analysis_stats = AnalysisStats()

    def _specs(self, scenario: Scenario, n_runs: Optional[int]) -> List:
        """The scenario's run specs, live early stopping attached if set."""
        if self.early_stop is None:
            return scenario_specs(self.config, scenario, n_runs)
        from repro.live.campaign import live_scenario_specs

        return live_scenario_specs(self.config, scenario, self.early_stop, n_runs)

    # ------------------------------------------------------------------
    def iter_scenario(
        self, scenario: Scenario, n_runs: Optional[int] = None
    ) -> Iterator[AnalyzedRun]:
        """Simulate, score and yield one scenario's runs, one at a time.

        Results stream chunk by chunk; each chunk's MSPC scoring + oMEDA
        diagnosis fans out over the analysis pool; every yielded record is
        final, so the caller can fold it into reducers and drop it.

        On the streaming path (``keep_results=False``) runs already present
        in the NPZ result cache are handed to the workers *as paths*: the
        worker loads, scores and summarizes the run, and the parent process
        never materializes its arrays at all.  The eager path
        (``keep_results=True``) loads results in the parent, since the
        caller wants them retained anyway.

        The raw iterators leave the cache eviction policy to the caller
        (streaming must not evict entries whose paths workers hold);
        :meth:`analyze_scenario` / :meth:`analyze_all` prune once their
        campaign is done, and the eager path prunes via the engine.
        """
        if self.keep_results:
            specs = self._specs(scenario, n_runs)
            yield from self._iter_eager([(scenario, specs)])
        else:
            yield from self._iter_streaming(scenario, n_runs)

    def iter_campaign(
        self,
        scenarios: Sequence[Scenario],
        n_runs: Optional[int] = None,
    ) -> Iterator[AnalyzedRun]:
        """Stream several scenarios' runs, in scenario order.

        On the eager path the whole sweep is submitted to the engine as one
        batch (one pool, fan-out spanning every scenario — the pre-streaming
        behaviour); per-run seeds make the outcome identical either way.
        The streaming path goes scenario by scenario, chunk by chunk.
        """
        if self.keep_results:
            groups = [
                (scenario, self._specs(scenario, n_runs))
                for scenario in scenarios
            ]
            yield from self._iter_eager(groups)
        else:
            for scenario in scenarios:
                yield from self._iter_streaming(scenario, n_runs)

    def _iter_eager(
        self, groups: Sequence[Tuple[Scenario, List]]
    ) -> Iterator[AnalyzedRun]:
        """Parent-side loads, full retention: the eager compatibility path.

        Retention makes O(chunk) memory moot here, so unless an explicit
        ``chunk_size`` was configured, the whole batch runs as one chunk —
        a single pool whose fan-out spans every scenario of the sweep.
        """
        flat_specs: List = []
        scenario_of: List[Scenario] = []
        for scenario, specs in groups:
            flat_specs.extend(specs)
            scenario_of.extend([scenario] * len(specs))
        starts = [
            self.config.anomaly_start_hour if scenario.is_anomalous else None
            for scenario in scenario_of
        ]
        chunk = self.chunk_size or max(1, len(flat_specs))
        # By the time verdict ``i`` is yielded, the chunk containing result
        # ``i`` has necessarily passed through and been recorded.
        retained: Dict[int, SimulationResult] = {}
        stream = self.engine.iter_run(flat_specs, chunk)

        def passthrough() -> Iterator[SimulationResult]:
            for index, item in enumerate(stream):
                retained[index] = item
                yield item

        scored = self.analysis_engine.map(
            passthrough(),
            anomaly_start_hour=starts,
            summarize=self.summarize,
            chunk_size=chunk,
        )
        try:
            run_index = 0
            current: Optional[Scenario] = None
            for flat_index, verdict in enumerate(scored):
                scenario = scenario_of[flat_index]
                if scenario is not current:
                    current, run_index = scenario, 0
                yield self._record(scenario, run_index, verdict, retained[flat_index])
                run_index += 1
        finally:
            # Close the inner generators first so their stats are final
            # (and the engine's deferred prune has run) before absorbing —
            # early termination by the consumer then still books the work
            # actually done.
            scored.close()
            stream.close()
            self.simulation_stats.absorb(self.engine.last_stats)
            self.analysis_stats.absorb(self.analysis_engine.last_stats)

    def _iter_streaming(
        self, scenario: Scenario, n_runs: Optional[int]
    ) -> Iterator[AnalyzedRun]:
        """Worker-side cache loads, O(chunk) memory: the streaming path.

        Misses go through :meth:`CampaignEngine.run` per chunk, which spins
        its pool up per call — acceptable because a mostly-cold cache means
        simulation dominates anyway; fully cached replays (the streaming
        path's main use) never pay it.
        """
        specs = self._specs(scenario, n_runs)
        anomaly_start = (
            self.config.anomaly_start_hour if scenario.is_anomalous else None
        )
        size = (
            int(self.chunk_size)
            if self.chunk_size is not None
            else self.config.parallel.resolved_chunk_size
        )
        if size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        stats = CampaignStats(backend="serial", n_workers=1)
        run_index = 0
        try:
            for offset in range(0, len(specs), size):
                chunk_specs = specs[offset : offset + size]
                chunk_started = time.perf_counter()
                stats.n_runs += len(chunk_specs)
                sources: List[Optional[ResultSource]] = [None] * len(chunk_specs)
                missing: List[int] = []
                for index, spec in enumerate(chunk_specs):
                    path = self._valid_cache_path(spec)
                    if path is not None:
                        sources[index] = path
                    else:
                        missing.append(index)
                stats.n_cache_hits += len(chunk_specs) - len(missing)
                if missing:
                    # Eviction is deferred to the end of the campaign
                    # (prune=False): the policy must not delete entries whose
                    # paths were just handed to the scoring workers.
                    simulated = self.engine.run(
                        [chunk_specs[i] for i in missing], prune=False
                    )
                    for index, result in zip(missing, simulated):
                        sources[index] = result
                    # Book what the engine actually did: a concurrent
                    # campaign may have filled the cache between our peek
                    # and the run, turning a miss into a hit.
                    engine_stats = self.engine.last_stats
                    stats.n_simulated += engine_stats.n_simulated
                    stats.n_cache_hits += engine_stats.n_cache_hits
                    stats.n_workers = max(stats.n_workers, engine_stats.n_workers)
                    if engine_stats.backend in ("process", "batch"):
                        stats.backend = engine_stats.backend
                stats.wall_seconds += time.perf_counter() - chunk_started
                try:
                    verdicts = list(
                        self.analysis_engine.map(
                            sources,
                            anomaly_start_hour=anomaly_start,
                            summarize=self.summarize,
                            chunk_size=len(sources),
                        )
                    )
                except Exception as error:
                    # Recovery only makes sense when the chunk depended on
                    # cache paths that may have gone bad under us (another
                    # campaign's prune/clear on a shared cache, or arrays
                    # corrupt past the peeked JSON members); anything else is
                    # a genuine scoring failure and propagates.
                    if not any(
                        isinstance(source, (str, Path)) for source in sources
                    ):
                        raise
                    warnings.warn(
                        f"chunk scoring failed ({error!r}); retrying with "
                        "cache-miss semantics",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    _LOG.warning(
                        "chunk scoring failed; retrying with cache-miss "
                        "semantics",
                        extra={"chunk": offset // size, "error": repr(error)},
                    )
                    # Rebuild the pool (a dead worker poisons it), reload
                    # sound entries / re-simulate broken ones, and rescore
                    # from memory.
                    self.analysis_engine.close()
                    recovered = self.engine.run(chunk_specs, prune=False)
                    # Entries that had to be re-simulated were optimistically
                    # counted as hits when their paths passed the peek.
                    resimulated = self.engine.last_stats.n_simulated
                    stats.n_simulated += resimulated
                    stats.n_cache_hits = max(0, stats.n_cache_hits - resimulated)
                    verdicts = list(
                        self.analysis_engine.map(
                            recovered,
                            anomaly_start_hour=anomaly_start,
                            summarize=self.summarize,
                            chunk_size=len(recovered),
                        )
                    )
                for verdict in verdicts:
                    yield self._record(scenario, run_index, verdict, None)
                    run_index += 1
                self.analysis_stats.absorb(self.analysis_engine.last_stats)
        finally:
            # Eviction is a campaign-level concern: analyze_scenario /
            # analyze_all prune once scoring is done.  Pruning here would
            # evict entries later scenarios of the same sweep still need.
            self.simulation_stats.absorb(stats)

    def _valid_cache_path(self, spec) -> Optional[Path]:
        """The spec's cache entry path, if present and structurally sound.

        Validation uses :func:`~repro.datasets.io.peek_result_npz`, which
        reads only the small JSON members — a corrupt or truncated entry is
        treated as a miss and re-simulated, matching
        :meth:`ResultCache.load` semantics without loading the arrays.
        """
        if self.engine.cache is None:
            return None
        path = self.engine.cache.path_for(spec)
        if not path.is_file():
            return None
        try:
            peek_result_npz(path)
        except Exception:
            return None
        return path

    def _record(
        self,
        scenario: Scenario,
        run_index: int,
        verdict: ScoredRun,
        result: Optional[SimulationResult],
    ) -> AnalyzedRun:
        """Assemble the reducer-facing record of one scored run."""
        if scenario.is_anomalous:
            length = run_length(
                verdict.diagnosis.detection_time_hours,
                self.config.anomaly_start_hour,
            )
        else:
            length = None
        return AnalyzedRun(
            scenario_name=scenario.name,
            run_index=run_index,
            diagnosis=verdict.diagnosis,
            run_length=length,
            shutdown_time_hours=verdict.shutdown_time_hours,
            result=result,
        )

    def analyze_scenario(
        self,
        scenario: Scenario,
        n_runs: Optional[int] = None,
        prune: bool = True,
        on_run=None,
    ) -> ScenarioSummary:
        """Stream one scenario through the reducers and summarize it.

        ``prune=False`` defers the cache eviction policy to the caller —
        :meth:`analyze_all` prunes once per sweep, after the last scenario,
        so a tight cap cannot evict entries a later scenario still needs.
        ``on_run`` is called with every :class:`AnalyzedRun` as it streams
        through (progress reporting).
        """
        reducer = ScenarioReducer(scenario)
        with obs_span(
            "analysis.scenario", scenario=scenario.name
        ) as scenario_span, log_context(scenario=scenario.name):
            for run in self.iter_scenario(scenario, n_runs):
                reducer.update(run)
                if on_run is not None:
                    on_run(run)
            if prune:
                self.engine.prune_cache()
            summary = reducer.summary()
            scenario_span.annotate(
                n_runs=summary.n_runs, n_detected=summary.n_detected
            )
        _LOG.info(
            "scenario analyzed",
            extra={
                "scenario": scenario.name,
                "n_runs": summary.n_runs,
                "n_detected": summary.n_detected,
            },
        )
        return summary

    def analyze_all(
        self,
        scenarios: Optional[Sequence[Scenario]] = None,
        on_run=None,
    ) -> Dict[str, ScenarioSummary]:
        """Stream every scenario (defaults to the paper's four)."""
        scenarios = list(scenarios or paper_scenarios())
        summaries: Dict[str, ScenarioSummary] = {}
        try:
            for scenario in scenarios:
                summaries[scenario.name] = self.analyze_scenario(
                    scenario, prune=False, on_run=on_run
                )
        finally:
            self.analysis_engine.close()
            self.engine.prune_cache()
        return summaries

    # ------------------------------------------------------------------
    def arl_table(
        self, summaries: Dict[str, ScenarioSummary]
    ) -> List[Dict[str, object]]:
        """One row per scenario: detection rate and ARL in hours."""
        return build_arl_table(summaries)

    def classification_table(
        self, summaries: Dict[str, ScenarioSummary]
    ) -> List[Dict[str, object]]:
        """One row per scenario: how its runs were classified."""
        return build_classification_table(summaries)


# ----------------------------------------------------------------------
# Table builders — shared by the eager and streaming paths
# ----------------------------------------------------------------------
def build_arl_table(
    summaries: Mapping[str, object]
) -> List[Dict[str, object]]:
    """One row per scenario: detection rate and ARL in hours.

    Accepts any mapping of scenario name to a summary-like object (a
    :class:`ScenarioSummary` or an eager
    :class:`~repro.experiments.evaluation.ScenarioEvaluation` — they share
    the table API), so the eager and streaming tables cannot drift apart.
    """
    rows: List[Dict[str, object]] = []
    for name, summary in summaries.items():
        rows.append(
            {
                "scenario": name,
                "title": summary.scenario.title,
                "n_runs": summary.n_runs,
                "n_detected": summary.n_detected,
                "detection_rate": summary.detection_rate,
                "arl_hours": summary.arl_hours,
            }
        )
    return rows


def build_classification_table(
    summaries: Mapping[str, object]
) -> List[Dict[str, object]]:
    """One row per scenario: how its runs were classified."""
    rows: List[Dict[str, object]] = []
    for name, summary in summaries.items():
        row: Dict[str, object] = {
            "scenario": name,
            "ground_truth": summary.scenario.expected_ground_truth,
        }
        row.update(summary.classification_counts())
        rows.append(row)
    return rows
