"""Experiment harness reproducing the paper's evaluation section."""

from repro.experiments.scenarios import (
    Scenario,
    ScenarioKind,
    paper_scenarios,
    normal_scenario,
    disturbance_idv6_scenario,
    integrity_attack_on_xmv3_scenario,
    integrity_attack_on_xmeas1_scenario,
    dos_attack_on_xmv3_scenario,
)
from repro.experiments.runner import (
    make_plant,
    make_controller,
    build_channels,
    build_disturbance_schedule,
    run_scenario,
    run_calibration_campaign,
    CalibrationData,
)
from repro.experiments.parallel import (
    RunSpec,
    CampaignStats,
    PruneStats,
    ResultCache,
    CampaignEngine,
    calibration_specs,
    scenario_specs,
)
from repro.experiments.analysis import (
    AnalyzedRun,
    AnalysisEngine,
    AnalysisPipeline,
    AnalysisStats,
    OmedaMeanReducer,
    ScenarioReducer,
    ScenarioSummary,
)
from repro.experiments.evaluation import (
    Evaluation,
    ScenarioEvaluation,
)
from repro.experiments.figures import (
    figure1_control_chart,
    figure3_feed_response,
    figure4_omeda_controller,
    figure5_omeda_process,
    arl_table,
)

__all__ = [
    "Scenario",
    "ScenarioKind",
    "paper_scenarios",
    "normal_scenario",
    "disturbance_idv6_scenario",
    "integrity_attack_on_xmv3_scenario",
    "integrity_attack_on_xmeas1_scenario",
    "dos_attack_on_xmv3_scenario",
    "make_plant",
    "make_controller",
    "build_channels",
    "build_disturbance_schedule",
    "run_scenario",
    "run_calibration_campaign",
    "CalibrationData",
    "RunSpec",
    "CampaignStats",
    "PruneStats",
    "ResultCache",
    "CampaignEngine",
    "calibration_specs",
    "scenario_specs",
    "AnalyzedRun",
    "AnalysisEngine",
    "AnalysisPipeline",
    "AnalysisStats",
    "OmedaMeanReducer",
    "ScenarioReducer",
    "ScenarioSummary",
    "Evaluation",
    "ScenarioEvaluation",
    "figure1_control_chart",
    "figure3_feed_response",
    "figure4_omeda_controller",
    "figure5_omeda_process",
    "arl_table",
]
