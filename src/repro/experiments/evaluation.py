"""End-to-end evaluation campaign reproducing the paper's Section V.

:class:`Evaluation` orchestrates the full experiment: a calibration campaign
to fit the dual-level MSPC models, repeated runs of every anomalous scenario,
Average Run Length computation and per-view oMEDA diagnosis — i.e. everything
needed to regenerate Figures 4 and 5 and the ARL discussion of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.anomaly.diagnosis import DualLevelAnalyzer, DualLevelDiagnosis
from repro.common.config import ExperimentConfig
from repro.common.exceptions import NotFittedError
from repro.experiments.parallel import CampaignEngine, scenario_specs
from repro.experiments.runner import CalibrationData, run_calibration_campaign
from repro.experiments.scenarios import Scenario, paper_scenarios
from repro.mspc.arl import run_length
from repro.process.simulator import SimulationResult

__all__ = ["ScenarioEvaluation", "Evaluation"]


@dataclass
class ScenarioEvaluation:
    """Aggregated results of one scenario over its repeated runs."""

    scenario: Scenario
    results: List[SimulationResult]
    diagnoses: List[DualLevelDiagnosis]
    run_lengths: List[Optional[float]]

    @property
    def n_runs(self) -> int:
        """Number of runs executed."""
        return len(self.results)

    @property
    def n_detected(self) -> int:
        """Number of runs in which the anomaly was detected."""
        return sum(1 for length in self.run_lengths if length is not None)

    @property
    def detection_rate(self) -> float:
        """Fraction of runs in which the anomaly was detected."""
        if not self.run_lengths:
            return 0.0
        return self.n_detected / len(self.run_lengths)

    @property
    def n_false_alarms(self) -> int:
        """Runs in which a detection fired before the anomaly even began."""
        count = 0
        for diagnosis in self.diagnoses:
            if diagnosis.metadata.get("false_alarm_time_hours") is not None:
                count += 1
        return count

    @property
    def arl_hours(self) -> Optional[float]:
        """Average Run Length over the detected runs, in hours."""
        lengths = [length for length in self.run_lengths if length is not None]
        if not lengths:
            return None
        return float(np.mean(lengths))

    def mean_omeda(self, view: str) -> Tuple[Tuple[str, ...], np.ndarray]:
        """Average oMEDA vector over runs for ``view`` ("controller"/"process")."""
        vectors: List[np.ndarray] = []
        names: Optional[Tuple[str, ...]] = None
        for diagnosis in self.diagnoses:
            omeda = (
                diagnosis.controller_omeda
                if view == "controller"
                else diagnosis.process_omeda
            )
            if omeda is None:
                continue
            vectors.append(np.asarray(omeda.contributions, dtype=float))
            names = omeda.variable_names
        if not vectors or names is None:
            return tuple(), np.array([])
        return names, np.mean(np.vstack(vectors), axis=0)

    def classification_counts(self) -> Dict[str, int]:
        """How many runs were classified into each anomaly class."""
        counts: Dict[str, int] = {}
        for diagnosis in self.diagnoses:
            key = diagnosis.classification.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def shutdown_times(self) -> List[Optional[float]]:
        """Per-run safety shutdown time (None when the run completed)."""
        return [result.shutdown_time_hours for result in self.results]


class Evaluation:
    """The complete evaluation campaign.

    Parameters
    ----------
    config:
        Campaign configuration (number of runs, simulation and MSPC settings).
    analyzer:
        Optional pre-built analyzer; a default dual-level analyzer using the
        configuration's MSPC settings is created otherwise.
    engine:
        Optional pre-built campaign engine; a default one following the
        configuration's :class:`~repro.common.config.ParallelConfig` is
        created otherwise.  All simulation batches — calibration and
        per-scenario repeats — are dispatched through it.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        analyzer: Optional[DualLevelAnalyzer] = None,
        engine: Optional[CampaignEngine] = None,
    ):
        self.config = config or ExperimentConfig()
        self.analyzer = analyzer or DualLevelAnalyzer(self.config.mspc)
        self.engine = engine or CampaignEngine(self.config.parallel)
        self.calibration: Optional[CalibrationData] = None
        self._scenario_results: Dict[str, ScenarioEvaluation] = {}

    # ------------------------------------------------------------------
    @property
    def is_calibrated(self) -> bool:
        """Whether the calibration campaign has been run and models fitted."""
        return self.calibration is not None and self.analyzer.is_fitted

    def calibrate(self) -> CalibrationData:
        """Run the calibration campaign and fit both MSPC models."""
        self.calibration = run_calibration_campaign(self.config, engine=self.engine)
        self.analyzer.fit(
            self.calibration.controller_data, self.calibration.process_data
        )
        return self.calibration

    def _require_calibrated(self) -> None:
        if not self.is_calibrated:
            raise NotFittedError("call calibrate() before evaluating scenarios")

    # ------------------------------------------------------------------
    def _assemble(
        self, scenario: Scenario, results: Sequence[SimulationResult]
    ) -> ScenarioEvaluation:
        """Diagnose each run of a scenario and aggregate the outcome."""
        diagnoses: List[DualLevelDiagnosis] = []
        run_lengths: List[Optional[float]] = []
        for result in results:
            diagnosis = self.analyzer.analyze(
                result.controller_data,
                result.process_data,
                anomaly_start_hour=(
                    self.config.anomaly_start_hour if scenario.is_anomalous else None
                ),
            )
            diagnoses.append(diagnosis)
            if scenario.is_anomalous:
                run_lengths.append(
                    run_length(
                        diagnosis.detection_time_hours, self.config.anomaly_start_hour
                    )
                )
            else:
                run_lengths.append(None)

        evaluation = ScenarioEvaluation(
            scenario=scenario,
            results=list(results),
            diagnoses=diagnoses,
            run_lengths=run_lengths,
        )
        self._scenario_results[scenario.name] = evaluation
        return evaluation

    def evaluate_scenario(
        self, scenario: Scenario, n_runs: Optional[int] = None
    ) -> ScenarioEvaluation:
        """Run one scenario ``n_runs`` times and aggregate its results."""
        self._require_calibrated()
        results = self.engine.run(scenario_specs(self.config, scenario, n_runs))
        return self._assemble(scenario, results)

    def evaluate_all(
        self, scenarios: Optional[Sequence[Scenario]] = None
    ) -> Dict[str, ScenarioEvaluation]:
        """Evaluate every scenario (defaults to the paper's four).

        The runs of *all* scenarios are submitted to the engine as one batch,
        so the fan-out spans the whole sweep rather than one scenario at a
        time; per-run seeds make the outcome identical either way.
        """
        self._require_calibrated()
        scenarios = list(scenarios or paper_scenarios())
        spec_lists = [
            scenario_specs(self.config, scenario) for scenario in scenarios
        ]
        flat_results = self.engine.run(
            [spec for specs in spec_lists for spec in specs]
        )
        offset = 0
        for scenario, specs in zip(scenarios, spec_lists):
            self._assemble(scenario, flat_results[offset : offset + len(specs)])
            offset += len(specs)
        return dict(self._scenario_results)

    @property
    def scenario_results(self) -> Dict[str, ScenarioEvaluation]:
        """Results of the scenarios evaluated so far, keyed by scenario name."""
        return dict(self._scenario_results)

    # ------------------------------------------------------------------
    def arl_table(self) -> List[Dict[str, object]]:
        """One row per evaluated scenario: detection rate and ARL in hours."""
        rows: List[Dict[str, object]] = []
        for name, evaluation in self._scenario_results.items():
            rows.append(
                {
                    "scenario": name,
                    "title": evaluation.scenario.title,
                    "n_runs": evaluation.n_runs,
                    "n_detected": evaluation.n_detected,
                    "detection_rate": evaluation.detection_rate,
                    "arl_hours": evaluation.arl_hours,
                }
            )
        return rows

    def classification_table(self) -> List[Dict[str, object]]:
        """One row per scenario: how its runs were classified."""
        rows: List[Dict[str, object]] = []
        for name, evaluation in self._scenario_results.items():
            row: Dict[str, object] = {
                "scenario": name,
                "ground_truth": evaluation.scenario.expected_ground_truth,
            }
            row.update(evaluation.classification_counts())
            rows.append(row)
        return rows
