"""End-to-end evaluation campaign reproducing the paper's Section V.

:class:`Evaluation` orchestrates the full experiment: a calibration campaign
to fit the dual-level MSPC models, repeated runs of every anomalous scenario,
Average Run Length computation and per-view oMEDA diagnosis — i.e. everything
needed to regenerate Figures 4 and 5 and the ARL discussion of the paper.

Since PR 2 the evaluation sits on top of the streaming analysis stage
(:mod:`repro.experiments.analysis`): simulation results stream out of the
engine chunk by chunk, MSPC scoring + oMEDA diagnosis fan out over the worker
pool, and all aggregates come from the incremental
:class:`~repro.experiments.analysis.ScenarioReducer`.  The eager API below is
a thin retention wrapper over that pipeline — it keeps full results and
diagnoses alive for inspection and produces bitwise-identical tables; use
:meth:`Evaluation.evaluate_all_streaming` when the campaign is too large to
hold in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.anomaly.diagnosis import DualLevelAnalyzer, DualLevelDiagnosis
from repro.common.config import EarlyStopPolicy, ExperimentConfig
from repro.common.exceptions import NotFittedError
from repro.experiments.analysis import (
    AnalysisPipeline,
    AnalyzedRun,
    ScenarioReducer,
    ScenarioSummary,
    build_arl_table,
    build_classification_table,
)
from repro.experiments.parallel import CampaignEngine
from repro.experiments.runner import CalibrationData, run_calibration_campaign
from repro.experiments.scenarios import Scenario, paper_scenarios
from repro.process.simulator import SimulationResult

__all__ = ["ScenarioEvaluation", "Evaluation"]


@dataclass
class ScenarioEvaluation:
    """Aggregated results of one scenario over its repeated runs.

    The eager, fully-retained record: every simulation result and diagnosis
    stays accessible.  All aggregates delegate to the same
    :class:`~repro.experiments.analysis.ScenarioReducer` the streaming path
    uses, so the two paths cannot drift apart.
    """

    scenario: Scenario
    results: List[SimulationResult]
    diagnoses: List[DualLevelDiagnosis]
    run_lengths: List[Optional[float]]
    # Lazily-built aggregate; the retained lists are write-once after
    # construction, so one replay through the reducer serves every property.
    _summary_cache: Optional[ScenarioSummary] = field(
        default=None, init=False, repr=False, compare=False
    )

    def to_summary(self) -> ScenarioSummary:
        """Replay the retained runs through the streaming reducer (cached).

        The cache is invalidated when runs are appended/removed; in-place
        mutation of an existing entry is not tracked.
        """
        if (
            self._summary_cache is not None
            and self._summary_cache.n_runs == len(self.diagnoses)
        ):
            return self._summary_cache
        reducer = ScenarioReducer(self.scenario)
        for index, (diagnosis, length) in enumerate(
            zip(self.diagnoses, self.run_lengths)
        ):
            # results may legitimately be empty/shorter (lean retention);
            # the diagnosis/run-length pair drives the aggregates.
            result = self.results[index] if index < len(self.results) else None
            reducer.update(
                AnalyzedRun(
                    scenario_name=self.scenario.name,
                    run_index=index,
                    diagnosis=diagnosis,
                    run_length=length,
                    shutdown_time_hours=(
                        result.shutdown_time_hours if result is not None else None
                    ),
                    result=result,
                )
            )
        self._summary_cache = reducer.summary()
        return self._summary_cache

    @property
    def n_runs(self) -> int:
        """Number of runs executed."""
        return len(self.results)

    @property
    def n_detected(self) -> int:
        """Number of runs in which the anomaly was detected."""
        return self.to_summary().n_detected

    @property
    def detection_rate(self) -> float:
        """Fraction of runs in which the anomaly was detected."""
        return self.to_summary().detection_rate

    @property
    def n_false_alarms(self) -> int:
        """Runs in which a detection fired before the anomaly even began."""
        return self.to_summary().n_false_alarms

    @property
    def arl_hours(self) -> Optional[float]:
        """Average Run Length over the detected runs, in hours."""
        return self.to_summary().arl_hours

    def mean_omeda(self, view: str) -> Tuple[Tuple[str, ...], np.ndarray]:
        """Average oMEDA vector over runs for ``view`` ("controller"/"process")."""
        return self.to_summary().mean_omeda(view)

    def classification_counts(self) -> Dict[str, int]:
        """How many runs were classified into each anomaly class."""
        return self.to_summary().classification_counts()

    def shutdown_times(self) -> List[Optional[float]]:
        """Per-run safety shutdown time (None when the run completed)."""
        return [result.shutdown_time_hours for result in self.results]


class Evaluation:
    """The complete evaluation campaign.

    Parameters
    ----------
    config:
        Campaign configuration (number of runs, simulation and MSPC settings).
    analyzer:
        Optional pre-built analyzer; a default dual-level analyzer using the
        configuration's MSPC settings is created otherwise.
    engine:
        Optional pre-built campaign engine; a default one following the
        configuration's :class:`~repro.common.config.ParallelConfig` is
        created otherwise.  All simulation batches — calibration and
        per-scenario repeats — are dispatched through it.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        analyzer: Optional[DualLevelAnalyzer] = None,
        engine: Optional[CampaignEngine] = None,
    ):
        self.config = config or ExperimentConfig()
        self.analyzer = analyzer or DualLevelAnalyzer(self.config.mspc)
        self.engine = engine or CampaignEngine(self.config.parallel)
        self.calibration: Optional[CalibrationData] = None
        self._scenario_results: Dict[str, ScenarioEvaluation] = {}
        # The pipeline of the most recent evaluate_* call, for its
        # accumulated simulation_stats / analysis_stats.
        self.last_pipeline: Optional[AnalysisPipeline] = None

    # ------------------------------------------------------------------
    @property
    def is_calibrated(self) -> bool:
        """Whether the calibration campaign has been run and models fitted."""
        return self.calibration is not None and self.analyzer.is_fitted

    def calibrate(self, keep_results: bool = True) -> CalibrationData:
        """Run the calibration campaign and fit both MSPC models.

        ``keep_results=False`` (the streaming campaigns' choice) releases
        each calibration run's :class:`SimulationResult` once its data has
        been folded into the concatenated calibration matrices, instead of
        retaining all of them on :attr:`calibration` for the process
        lifetime.
        """
        self.calibration = run_calibration_campaign(
            self.config, engine=self.engine, keep_results=keep_results
        )
        self.analyzer.fit(
            self.calibration.controller_data, self.calibration.process_data
        )
        return self.calibration

    def _require_calibrated(self) -> None:
        if not self.is_calibrated:
            raise NotFittedError("call calibrate() before evaluating scenarios")

    # ------------------------------------------------------------------
    def _pipeline(self, **overrides) -> AnalysisPipeline:
        """An analysis pipeline sharing this evaluation's engine and analyzer."""
        options = dict(engine=self.engine, summarize=False, keep_results=True)
        options.update(overrides)
        pipeline = AnalysisPipeline(self.analyzer, self.config, **options)
        self.last_pipeline = pipeline
        return pipeline

    def _evaluate_with(
        self,
        pipeline: AnalysisPipeline,
        scenario: Scenario,
        n_runs: Optional[int] = None,
    ) -> ScenarioEvaluation:
        """Stream one scenario through a pipeline, retaining everything."""
        results: List[SimulationResult] = []
        diagnoses: List[DualLevelDiagnosis] = []
        run_lengths: List[Optional[float]] = []
        for run in pipeline.iter_scenario(scenario, n_runs):
            results.append(run.result)
            diagnoses.append(run.diagnosis)
            run_lengths.append(run.run_length)
        evaluation = ScenarioEvaluation(
            scenario=scenario,
            results=results,
            diagnoses=diagnoses,
            run_lengths=run_lengths,
        )
        self._scenario_results[scenario.name] = evaluation
        return evaluation

    def evaluate_scenario(
        self, scenario: Scenario, n_runs: Optional[int] = None
    ) -> ScenarioEvaluation:
        """Run one scenario ``n_runs`` times and aggregate its results."""
        self._require_calibrated()
        pipeline = self._pipeline()
        try:
            return self._evaluate_with(pipeline, scenario, n_runs)
        finally:
            pipeline.analysis_engine.close()

    def _evaluate_all_with(
        self,
        pipeline: AnalysisPipeline,
        scenarios: Sequence[Scenario],
        on_run=None,
    ) -> Dict[str, ScenarioEvaluation]:
        """Drain a campaign pipeline into eager per-scenario records."""
        by_name = {scenario.name: scenario for scenario in scenarios}
        collected: Dict[str, Tuple[list, list, list]] = {
            scenario.name: ([], [], []) for scenario in scenarios
        }
        try:
            for run in pipeline.iter_campaign(scenarios):
                results, diagnoses, run_lengths = collected[run.scenario_name]
                results.append(run.result)
                diagnoses.append(run.diagnosis)
                run_lengths.append(run.run_length)
                if on_run is not None:
                    on_run(run)
        finally:
            pipeline.analysis_engine.close()
        for name, (results, diagnoses, run_lengths) in collected.items():
            self._scenario_results[name] = ScenarioEvaluation(
                scenario=by_name[name],
                results=results,
                diagnoses=diagnoses,
                run_lengths=run_lengths,
            )
        return dict(self._scenario_results)

    def evaluate_all(
        self,
        scenarios: Optional[Sequence[Scenario]] = None,
        on_run=None,
    ) -> Dict[str, ScenarioEvaluation]:
        """Evaluate every scenario (defaults to the paper's four).

        The runs of *all* scenarios are submitted to the engine as one batch
        (via :meth:`AnalysisPipeline.iter_campaign`), so the simulation
        fan-out spans the whole sweep rather than one scenario at a time;
        per-run seeds make the outcome bitwise-identical whatever the
        batching, chunking, worker count or backend.  ``on_run`` is called
        with every :class:`~repro.experiments.analysis.AnalyzedRun` as it
        completes (progress reporting).
        """
        self._require_calibrated()
        scenarios = list(scenarios or paper_scenarios())
        return self._evaluate_all_with(self._pipeline(), scenarios, on_run)

    def evaluate_all_streaming(
        self,
        scenarios: Optional[Sequence[Scenario]] = None,
        chunk_size: Optional[int] = None,
        on_run=None,
    ) -> Dict[str, ScenarioSummary]:
        """Evaluate every scenario without retaining per-run data.

        The memory-bounded path: results stream out of the (cache-backed)
        engine in chunks, workers return compact diagnosis summaries, and
        only the incremental aggregates survive — peak memory is O(chunk)
        rather than O(campaign).  The returned
        :class:`~repro.experiments.analysis.ScenarioSummary` objects expose
        the same table API as :class:`ScenarioEvaluation` and are
        bitwise-identical to the eager path's tables.
        """
        self._require_calibrated()
        pipeline = self._pipeline(
            summarize=True, keep_results=False, chunk_size=chunk_size
        )
        return pipeline.analyze_all(scenarios, on_run=on_run)

    def evaluate_all_live(
        self,
        scenarios: Optional[Sequence[Scenario]] = None,
        policy: Optional[EarlyStopPolicy] = EarlyStopPolicy(),
        streaming: bool = False,
        chunk_size: Optional[int] = None,
        on_run=None,
    ):
        """Evaluate every scenario with live monitoring and early stopping.

        Anomalous scenarios' runs are scored sample-by-sample *while they
        simulate* (see :mod:`repro.live`) and terminated
        ``policy.grace_samples`` samples after a confirmed detection, so
        the campaign spends no wall-clock simulating what the monitor has
        already decided.  Detection verdicts (detected / detection time /
        run length) are identical to the full-horizon campaign, because the
        truncation point is strictly after the confirming sample;
        truncated results are cached under dedicated keys
        (:meth:`~repro.experiments.parallel.RunSpec.cache_token`) and never
        mix with full-horizon entries.  Normal scenarios always run their
        whole horizon, and ``policy=None`` disables early stopping entirely
        (the campaign is then identical to :meth:`evaluate_all`).
        """
        self._require_calibrated()
        scenarios = list(scenarios or paper_scenarios())
        if streaming:
            pipeline = self._pipeline(
                summarize=True,
                keep_results=False,
                chunk_size=chunk_size,
                early_stop=policy,
            )
            return pipeline.analyze_all(scenarios, on_run=on_run)
        pipeline = self._pipeline(early_stop=policy, chunk_size=chunk_size)
        return self._evaluate_all_with(pipeline, scenarios, on_run)

    @property
    def scenario_results(self) -> Dict[str, ScenarioEvaluation]:
        """Results of the scenarios evaluated so far, keyed by scenario name."""
        return dict(self._scenario_results)

    # ------------------------------------------------------------------
    def arl_table(self) -> List[Dict[str, object]]:
        """One row per evaluated scenario: detection rate and ARL in hours."""
        return build_arl_table(self._scenario_results)

    def classification_table(self) -> List[Dict[str, object]]:
        """One row per scenario: how its runs were classified."""
        return build_classification_table(self._scenario_results)
