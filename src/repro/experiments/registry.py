"""Scenario registry: name → scenario factory, extensible by users.

The registry is what lets campaign specs (and the CLI, figures, docs)
reference scenarios **by name** instead of importing factory functions: the
five paper scenarios are pre-registered, and user code — or a plugin, or a
test — registers new compositions with :func:`register_scenario` (usable as
a decorator) without touching library code:

    >>> from repro.experiments.registry import register_scenario
    >>> from repro.experiments.injections import DriftInjection
    >>> @register_scenario
    ... def drift_xmeas2():
    ...     return Scenario(
    ...         name="drift_xmeas2",
    ...         injections=(DriftInjection("sensor", 2, 0.05),),
    ...     )

Factories (rather than instances) are registered so every lookup returns a
fresh, immutable scenario and registration order cannot leak state between
campaigns.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.common.exceptions import ConfigurationError
from repro.experiments.scenarios import (
    Scenario,
    disturbance_idv6_scenario,
    dos_attack_on_xmv3_scenario,
    integrity_attack_on_xmeas1_scenario,
    integrity_attack_on_xmv3_scenario,
    normal_scenario,
    paper_scenarios,
)

__all__ = [
    "ScenarioRegistry",
    "REGISTRY",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "scenario_title",
    "resolve_scenario",
    "paper_scenario_names",
]

ScenarioFactory = Callable[[], Scenario]
#: What :meth:`ScenarioRegistry.resolve` accepts: a registered name, an
#: already-built scenario, or a scenario mapping (e.g. parsed from a spec).
ScenarioRef = Union[str, Scenario, Mapping[str, Any]]


class ScenarioRegistry:
    """A mapping of scenario names to scenario factories."""

    def __init__(self) -> None:
        self._factories: Dict[str, ScenarioFactory] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        factory: ScenarioFactory,
        name: Optional[str] = None,
        overwrite: bool = False,
    ) -> ScenarioFactory:
        """Register a factory under ``name`` (default: its scenario's name).

        Returns the factory unchanged, so this method — and the module-level
        :func:`register_scenario` — can be used as a decorator.  Registering
        an existing name requires ``overwrite=True``; silently shadowing a
        built-in would corrupt every spec referencing it.
        """
        if name is None:
            name = factory().name
        if name in self._factories and not overwrite:
            raise ConfigurationError(
                f"scenario {name!r} is already registered "
                "(pass overwrite=True to replace it)"
            )
        self._factories[str(name)] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove a registered scenario (no error if absent)."""
        self._factories.pop(name, None)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Scenario:
        """Build the scenario registered under ``name``."""
        if name not in self._factories:
            raise ConfigurationError(
                f"unknown scenario {name!r} (registered: {', '.join(self.names()) or 'none'})"
            )
        scenario = self._factories[name]()
        if not isinstance(scenario, Scenario):
            raise ConfigurationError(
                f"factory of {name!r} returned {type(scenario).__name__}, "
                "expected Scenario"
            )
        return scenario

    def resolve(self, ref: ScenarioRef) -> Scenario:
        """Turn a name, mapping or scenario into a :class:`Scenario`."""
        if isinstance(ref, Scenario):
            return ref
        if isinstance(ref, str):
            return self.get(ref)
        if isinstance(ref, Mapping):
            if "use" in ref:
                extra = sorted(set(ref) - {"use"})
                if extra:
                    raise ConfigurationError(
                        f"a 'use' scenario reference takes no other keys, got {extra}"
                    )
                return self.get(str(ref["use"]))
            return Scenario.from_mapping(ref)
        raise ConfigurationError(
            f"cannot resolve {ref!r} into a scenario "
            "(expected a name, a mapping or a Scenario)"
        )

    def title_of(self, name: str, default: Optional[str] = None) -> str:
        """Human-readable title of a registered scenario (``default``/name otherwise)."""
        if name in self._factories:
            return self._factories[name]().title
        return name if default is None else default

    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """The registered names, in registration order."""
        return tuple(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)


#: The process-wide default registry, pre-loaded with the paper's scenarios.
REGISTRY = ScenarioRegistry()
for _factory in (
    normal_scenario,
    disturbance_idv6_scenario,
    integrity_attack_on_xmv3_scenario,
    integrity_attack_on_xmeas1_scenario,
    dos_attack_on_xmv3_scenario,
):
    REGISTRY.register(_factory)
del _factory


def register_scenario(
    factory: Optional[ScenarioFactory] = None,
    name: Optional[str] = None,
    overwrite: bool = False,
):
    """Register a factory on the default registry (usable as a decorator)."""
    if factory is None:

        def decorator(inner: ScenarioFactory) -> ScenarioFactory:
            return REGISTRY.register(inner, name=name, overwrite=overwrite)

        return decorator
    return REGISTRY.register(factory, name=name, overwrite=overwrite)


def get_scenario(name: str) -> Scenario:
    """Build the scenario registered under ``name`` on the default registry."""
    return REGISTRY.get(name)


def scenario_names() -> Tuple[str, ...]:
    """Names registered on the default registry."""
    return REGISTRY.names()


def scenario_title(name: str) -> str:
    """Figure/report title of a scenario name (falls back to the name)."""
    return REGISTRY.title_of(name)


def resolve_scenario(ref: ScenarioRef) -> Scenario:
    """Resolve a name / mapping / scenario through the default registry."""
    return REGISTRY.resolve(ref)


def paper_scenario_names() -> Tuple[str, ...]:
    """The four anomalous paper scenarios' names, in paper order."""
    return tuple(scenario.name for scenario in paper_scenarios())
