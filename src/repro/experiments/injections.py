"""Composable anomaly-injection primitives — the scenario DSL.

A :class:`~repro.experiments.scenarios.Scenario` is a named composition of
*injections*: small, frozen, serializable descriptions of one anomalous
influence on the closed loop.  Two families exist:

* **process injections** — :class:`DisturbanceInjection` activates one of the
  Tennessee-Eastman IDV disturbances;
* **channel injections** — everything else tampers with a single entry of the
  sensor or actuator channel: :class:`IntegrityInjection` (forge a value),
  :class:`DoSInjection` (suppress communication), :class:`BiasInjection`
  (constant offset), :class:`DriftInjection` (stealthy ramp),
  :class:`StuckAtInjection` (signal frozen at its onset value or a constant)
  and :class:`ReplayInjection` (loop a pre-attack recording).

Every primitive carries an optional ``start_hour`` / ``end_hour`` window;
``start_hour=None`` means "the campaign's anomaly onset", so the same
scenario definition works at any :class:`~repro.common.config.ExperimentConfig`
onset.  Injections serialize to/from plain mappings (:meth:`Injection.
to_mapping` / :func:`injection_from_mapping`), which is what makes whole
scenarios expressible in a TOML/JSON campaign spec with no library code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Type

from repro.common.exceptions import ConfigurationError
from repro.network.attacks import (
    Attack,
    BiasAttack,
    DoSAttack,
    DriftAttack,
    IntegrityAttack,
    ReplayAttack,
)

__all__ = [
    "Injection",
    "ChannelInjection",
    "DisturbanceInjection",
    "IntegrityInjection",
    "DoSInjection",
    "BiasInjection",
    "DriftInjection",
    "StuckAtInjection",
    "ReplayInjection",
    "INJECTION_TYPES",
    "injection_from_mapping",
    "injections_from_mappings",
]

SENSOR = "sensor"
ACTUATOR = "actuator"
_CHANNELS = (SENSOR, ACTUATOR)


def _coerce(value: Any, kind: type) -> Any:
    """Coerce a mapping/constructor value to its canonical scalar type.

    Specs arrive from TOML/JSON where ``10`` and ``10.0`` are different
    tokens; canonicalizing here keeps cache keys independent of how the
    author spelled a number.
    """
    if value is None:
        return None
    if kind is float:
        return float(value)
    if kind is int:
        if isinstance(value, float) and not value.is_integer():
            raise ConfigurationError(f"expected an integer, got {value!r}")
        return int(value)
    return value


@dataclass(frozen=True)
class Injection:
    """Base of all injection primitives.

    Attributes
    ----------
    start_hour:
        Simulation hour at which the injection begins.  ``None`` defers to
        the campaign's ``anomaly_start_hour``, which is how the paper's
        scenarios stay onset-agnostic.
    end_hour:
        Hour at which it stops; ``None`` means it persists to the end of the
        run.
    """

    type: ClassVar[str] = ""

    start_hour: Optional[float] = field(default=None, kw_only=True)
    end_hour: Optional[float] = field(default=None, kw_only=True)

    def __post_init__(self) -> None:
        object.__setattr__(self, "start_hour", _coerce(self.start_hour, float))
        object.__setattr__(self, "end_hour", _coerce(self.end_hour, float))
        if self.start_hour is not None and self.start_hour < 0:
            raise ConfigurationError("start_hour must be >= 0")
        if (
            self.start_hour is not None
            and self.end_hour is not None
            and self.end_hour <= self.start_hour
        ):
            raise ConfigurationError("end_hour must be greater than start_hour")

    # ------------------------------------------------------------------
    def onset(self, default_start_hour: float) -> float:
        """The effective start hour given the campaign default."""
        if self.start_hour is None:
            return float(default_start_hour)
        return self.start_hour

    def scaled(self, magnitude: float) -> "Injection":
        """This injection with its characteristic magnitude scaled.

        The base implementation returns ``self`` unchanged; primitives with
        a natural intensity knob (disturbance magnitude, drift rate, bias
        offset) override it.  Used by campaign-spec magnitude sweeps.
        """
        del magnitude
        return self

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON/TOML-ready mapping describing this injection.

        ``None``-valued fields are omitted (TOML has no null), so the
        mapping shape is canonical: both the DSL constructors and the spec
        parser produce identical mappings for identical injections.
        """
        mapping: Dict[str, Any] = {"type": self.type}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value is not None:
                mapping[spec.name] = value
        return mapping


@dataclass(frozen=True)
class DisturbanceInjection(Injection):
    """Activate Tennessee-Eastman process disturbance IDV(``index``)."""

    type: ClassVar[str] = "disturbance"

    index: int
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "index", _coerce(self.index, int))
        object.__setattr__(self, "magnitude", _coerce(self.magnitude, float))
        if self.index < 1:
            raise ConfigurationError("disturbance index is 1-based and must be >= 1")
        if self.magnitude < 0:
            raise ConfigurationError("magnitude must be >= 0")

    def scaled(self, magnitude: float) -> "DisturbanceInjection":
        return replace(self, magnitude=self.magnitude * float(magnitude))


@dataclass(frozen=True)
class ChannelInjection(Injection):
    """Base of injections that tamper with one channel entry.

    Attributes
    ----------
    channel:
        ``"sensor"`` (XMEAS readings on their way to the controller) or
        ``"actuator"`` (XMV commands on their way to the plant).
    target:
        1-based index of the targeted entry within that channel.
    """

    channel: str
    target: int

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "target", _coerce(self.target, int))
        if self.channel not in _CHANNELS:
            raise ConfigurationError(
                f"channel must be one of {_CHANNELS}, got {self.channel!r}"
            )
        if self.target < 1:
            raise ConfigurationError("target is 1-based and must be >= 1")

    def build_attack(self, default_start_hour: float) -> Attack:
        """The :mod:`repro.network.attacks` instance realizing this injection."""
        raise NotImplementedError


@dataclass(frozen=True)
class IntegrityInjection(ChannelInjection):
    """Replace the transmitted value with an attacker-chosen constant."""

    type: ClassVar[str] = "integrity"

    value: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "value", _coerce(self.value, float))

    def build_attack(self, default_start_hour: float) -> Attack:
        return IntegrityAttack(
            target_index=self.target,
            start_hour=self.onset(default_start_hour),
            injected=self.value,
            end_hour=self.end_hour,
        )


@dataclass(frozen=True)
class DoSInjection(ChannelInjection):
    """Suppress communication: the receiver holds the last delivered value."""

    type: ClassVar[str] = "dos"

    def build_attack(self, default_start_hour: float) -> Attack:
        return DoSAttack(
            target_index=self.target,
            start_hour=self.onset(default_start_hour),
            end_hour=self.end_hour,
        )


@dataclass(frozen=True)
class BiasInjection(ChannelInjection):
    """Add a constant offset to the transmitted value."""

    type: ClassVar[str] = "bias"

    offset: float

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "offset", _coerce(self.offset, float))

    def scaled(self, magnitude: float) -> "BiasInjection":
        return replace(self, offset=self.offset * float(magnitude))

    def build_attack(self, default_start_hour: float) -> Attack:
        return BiasAttack(
            target_index=self.target,
            start_hour=self.onset(default_start_hour),
            offset=self.offset,
            end_hour=self.end_hour,
        )


@dataclass(frozen=True)
class DriftInjection(ChannelInjection):
    """Drift the transmitted value away from the truth at a constant rate."""

    type: ClassVar[str] = "drift"

    rate_per_hour: float

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self, "rate_per_hour", _coerce(self.rate_per_hour, float)
        )

    def scaled(self, magnitude: float) -> "DriftInjection":
        return replace(self, rate_per_hour=self.rate_per_hour * float(magnitude))

    def build_attack(self, default_start_hour: float) -> Attack:
        return DriftAttack(
            target_index=self.target,
            start_hour=self.onset(default_start_hour),
            rate_per_hour=self.rate_per_hour,
            end_hour=self.end_hour,
        )


@dataclass(frozen=True)
class StuckAtInjection(ChannelInjection):
    """Freeze the transmitted value — at a constant, or at its onset value.

    ``value=None`` (the default) holds whatever was last delivered before
    onset (a sensor or valve stuck where it was); an explicit ``value``
    models a stuck-at-constant fault (e.g. stuck-at-zero).
    """

    type: ClassVar[str] = "stuck_at"

    value: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "value", _coerce(self.value, float))

    def build_attack(self, default_start_hour: float) -> Attack:
        if self.value is None:
            return DoSAttack(
                target_index=self.target,
                start_hour=self.onset(default_start_hour),
                end_hour=self.end_hour,
            )
        return IntegrityAttack(
            target_index=self.target,
            start_hour=self.onset(default_start_hour),
            injected=self.value,
            end_hour=self.end_hour,
        )


@dataclass(frozen=True)
class ReplayInjection(ChannelInjection):
    """Replay a pre-onset recording of the signal, in a loop."""

    type: ClassVar[str] = "replay"

    record_hours: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "record_hours", _coerce(self.record_hours, float))
        if self.record_hours <= 0:
            raise ConfigurationError("record_hours must be positive")

    def build_attack(self, default_start_hour: float) -> Attack:
        return ReplayAttack(
            target_index=self.target,
            start_hour=self.onset(default_start_hour),
            record_hours=self.record_hours,
            end_hour=self.end_hour,
        )


#: Registry of injection type tags, the dispatch table of the spec parser.
INJECTION_TYPES: Dict[str, Type[Injection]] = {
    cls.type: cls
    for cls in (
        DisturbanceInjection,
        IntegrityInjection,
        DoSInjection,
        BiasInjection,
        DriftInjection,
        StuckAtInjection,
        ReplayInjection,
    )
}


def injection_from_mapping(mapping: Mapping[str, Any]) -> Injection:
    """Build an injection from its :meth:`Injection.to_mapping` form.

    Unknown ``type`` tags and unknown keys raise
    :class:`~repro.common.exceptions.ConfigurationError` — a misspelled
    field in a spec file must fail loudly, not silently drop an anomaly.
    """
    if "type" not in mapping:
        raise ConfigurationError(
            f"injection mapping needs a 'type' key "
            f"(one of {sorted(INJECTION_TYPES)}), got {dict(mapping)!r}"
        )
    tag = mapping["type"]
    if tag not in INJECTION_TYPES:
        raise ConfigurationError(
            f"unknown injection type {tag!r} (known: {sorted(INJECTION_TYPES)})"
        )
    cls = INJECTION_TYPES[tag]
    allowed = {spec.name for spec in fields(cls)}
    arguments = {key: value for key, value in mapping.items() if key != "type"}
    unknown = sorted(set(arguments) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} for injection type {tag!r} "
            f"(allowed: {sorted(allowed)})"
        )
    return cls(**arguments)


def injections_from_mappings(
    mappings: Any,
) -> Tuple[Injection, ...]:
    """Build a tuple of injections, passing through already-built ones."""
    built = []
    for item in mappings:
        if isinstance(item, Injection):
            built.append(item)
        elif isinstance(item, Mapping):
            built.append(injection_from_mapping(item))
        else:
            raise ConfigurationError(
                f"an injection must be an Injection or a mapping, got {item!r}"
            )
    return tuple(built)
