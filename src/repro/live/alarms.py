"""Alarm management for the live monitor: raise/clear state machine.

A deployed monitor does not emit a bare boolean per sample — it manages
*alarms*: the consecutive-violation rule raises one, the statistics dropping
back under their limits clears it, and every transition is an auditable
event.  :class:`AlarmManager` implements that state machine over the D and Q
statistics of one data view; the detection bookkeeping used for run-length
metrics lives in :mod:`repro.live.monitor`, which applies the same rule with
the anomaly-onset offsets of the batch path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.exceptions import ConfigurationError

__all__ = ["ViolationStreak", "AlarmState", "AlarmEvent", "AlarmManager"]


class ViolationStreak:
    """Consecutive-violation counter — the paper's detection rule, defined
    once for the live subsystem.

    :meth:`update` returns ``True`` exactly when a run of violations
    reaches ``consecutive`` samples (the moment
    :func:`repro.mspc.charts.detect_anomaly` flags in batch); both the
    alarm state machine and the detection bookkeeping count through this
    class, so the rule cannot drift between them.
    """

    __slots__ = ("consecutive", "count")

    def __init__(self, consecutive: int):
        if consecutive < 1:
            raise ConfigurationError("consecutive must be >= 1")
        self.consecutive = int(consecutive)
        self.count = 0

    def update(self, violating: bool) -> bool:
        """Fold one sample in; ``True`` when the rule fires at it."""
        self.count = self.count + 1 if violating else 0
        return self.count == self.consecutive


class AlarmState(enum.Enum):
    """Whether an alarm is currently standing."""

    NORMAL = "normal"
    ACTIVE = "active"


@dataclass(frozen=True)
class AlarmEvent:
    """One alarm transition.

    Attributes
    ----------
    kind:
        ``"raised"`` or ``"cleared"``.
    index / time_hours:
        Sample at which the transition happened.
    chart:
        Chart responsible: ``"D"``, ``"Q"`` or ``"D+Q"`` when both fired at
        the same sample.  A ``cleared`` event names the chart whose alarm it
        clears.
    statistic_value / limit:
        Value and detection limit of the responsible chart at the
        transition sample (the D chart's pair for ``"D+Q"``).
    """

    kind: str
    index: int
    time_hours: float
    chart: str
    statistic_value: float
    limit: float

    @property
    def raised(self) -> bool:
        """Whether this event raised (vs. cleared) an alarm."""
        return self.kind == "raised"

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON-safe mapping of this event.

        Floats are emitted as Python floats (``json.dumps`` writes their
        shortest round-trip repr), so a transition that crosses the wire is
        rebuilt bit-for-bit by :meth:`from_mapping`.
        """
        return {
            "kind": self.kind,
            "index": int(self.index),
            "time_hours": float(self.time_hours),
            "chart": self.chart,
            "statistic_value": float(self.statistic_value),
            "limit": float(self.limit),
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "AlarmEvent":
        """Rebuild an event from its :meth:`to_mapping` form."""
        return cls(
            kind=str(mapping["kind"]),
            index=int(mapping["index"]),
            time_hours=float(mapping["time_hours"]),
            chart=str(mapping["chart"]),
            statistic_value=float(mapping["statistic_value"]),
            limit=float(mapping["limit"]),
        )


class AlarmManager:
    """Consecutive-violation alarm state machine over the D and Q charts.

    The rule matches the paper's detection rule (and
    :class:`~repro.anomaly.detector.StreamingDetector`): an alarm is raised
    at the ``consecutive_violations``-th consecutive sample above the
    detection limit on either chart.  It is cleared at the first sample at
    which *both* statistics are back at or under their limits, after which a
    fresh violation run can raise it again.
    """

    def __init__(self, consecutive_violations: int):
        self.consecutive_violations = int(consecutive_violations)
        self.reset()  # ViolationStreak validates consecutive_violations >= 1

    def reset(self) -> None:
        """Return to the no-alarm state and forget all events."""
        self._state = AlarmState.NORMAL
        self._streak_d = ViolationStreak(self.consecutive_violations)
        self._streak_q = ViolationStreak(self.consecutive_violations)
        self._raised_chart: Optional[str] = None
        self._events: List[AlarmEvent] = []

    # ------------------------------------------------------------------
    @property
    def state(self) -> AlarmState:
        """Current alarm state."""
        return self._state

    @property
    def active(self) -> bool:
        """Whether an alarm is currently standing."""
        return self._state is AlarmState.ACTIVE

    @property
    def events(self) -> Tuple[AlarmEvent, ...]:
        """Every transition so far, in order."""
        return tuple(self._events)

    @property
    def raise_events(self) -> Tuple[AlarmEvent, ...]:
        """The ``raised`` transitions only."""
        return tuple(event for event in self._events if event.raised)

    @property
    def first_raise(self) -> Optional[AlarmEvent]:
        """The first alarm raised, or ``None``."""
        for event in self._events:
            if event.raised:
                return event
        return None

    # ------------------------------------------------------------------
    def update(
        self,
        index: int,
        time_hours: float,
        d_value: float,
        d_limit: float,
        q_value: float,
        q_limit: float,
    ) -> Optional[AlarmEvent]:
        """Fold one sample's statistics in; return the transition, if any."""
        d_violating = d_value > d_limit
        q_violating = q_value > q_limit
        d_fired = self._streak_d.update(d_violating)
        q_fired = self._streak_q.update(q_violating)

        event: Optional[AlarmEvent] = None
        if self._state is AlarmState.NORMAL:
            if d_fired or q_fired:
                if d_fired and q_fired:
                    chart, value, limit = "D+Q", d_value, d_limit
                elif d_fired:
                    chart, value, limit = "D", d_value, d_limit
                else:
                    chart, value, limit = "Q", q_value, q_limit
                event = AlarmEvent(
                    "raised", int(index), float(time_hours), chart, value, limit
                )
                self._state = AlarmState.ACTIVE
                self._raised_chart = chart
        elif not d_violating and not q_violating:
            chart = self._raised_chart or "D"
            if chart.startswith("D"):
                value, limit = d_value, d_limit
            else:
                value, limit = q_value, q_limit
            event = AlarmEvent(
                "cleared", int(index), float(time_hours), chart, value, limit
            )
            self._state = AlarmState.NORMAL
            self._raised_chart = None
        if event is not None:
            self._events.append(event)
        return event
