"""ASCII dashboard for live-monitored runs.

Renders a :class:`~repro.live.monitor.LiveMonitor`'s state — per-view D/Q
control charts, the alarm log, the on-alarm oMEDA snapshot and the latency
metrics — as plain text, built on the primitives of
:mod:`repro.plotting.ascii`.  ``scripts/run_live.py`` prints it after (or
during) a run; it is equally usable from a notebook or a log file.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.live.monitor import LiveMonitor
from repro.plotting.ascii import render_bar_chart, render_control_chart

__all__ = ["render_live_dashboard"]


def _format_hours(value: Optional[float]) -> str:
    return "—" if value is None else f"{value:.3f} h"


def render_live_dashboard(
    monitor: LiveMonitor,
    width: int = 72,
    height: int = 10,
    top_variables: int = 3,
    actions: Sequence = (),
) -> str:
    """Render the monitor's current state as a multi-section text dashboard.

    ``actions`` are :class:`~repro.response.verify.ActionRecord` entries of
    a closed-loop response run; when given, a ``response actions:`` section
    with ``>>>``-marked lines follows the alarm log.
    """
    report = monitor.report()
    lines: List[str] = []
    lines.append("=" * width)
    lines.append("LIVE MONITOR".center(width))
    lines.append("=" * width)
    status = "ALARM" if any(
        view.alarms.active for view in monitor.views.values()
    ) else "normal"
    lines.append(
        f"samples: {report.n_samples}   status: {status}   "
        f"detected: {'yes' if report.detected else 'no'}"
    )
    lines.append(
        f"onset: {_format_hours(monitor.anomaly_start_hour)}   "
        f"detection: {_format_hours(report.detection_time_hours)}   "
        f"latency: {_format_hours(report.detection_latency_hours)}   "
        f"diagnosis: {_format_hours(report.time_to_diagnosis_hours)}"
    )
    if report.stopped_early:
        lines.append(
            f"early stop: after sample {report.stop_index} "
            f"(t = {_format_hours(report.stop_time_hours)})"
        )
    if report.false_alarm_time_hours is not None:
        lines.append(
            f"false alarm before onset at {_format_hours(report.false_alarm_time_hours)}"
        )

    for name, view in monitor.views.items():
        statistics = view.statistics
        if statistics["D"].size == 0:
            continue
        for chart, limits in (("D", view.monitor.t2_limits), ("Q", view.monitor.spe_limits)):
            lines.append("")
            lines.append(
                render_control_chart(
                    statistics[chart],
                    limits.limits,
                    title=f"{name} view — {chart} statistic",
                    width=width,
                    height=height,
                )
            )

    events = [
        (event, name)
        for name, view in monitor.views.items()
        for event in view.alarms.events
    ]
    events.sort(key=lambda item: (item[0].index, item[1]))
    lines.append("")
    lines.append("alarm log:")
    if not events:
        lines.append("  (no alarms)")
    for event, name in events:
        lines.append(
            f"  [{event.time_hours:9.3f} h] {name:<10} {event.kind:<8} "
            f"{event.chart:<3} value {event.statistic_value:.4g} "
            f"(limit {event.limit:.4g})"
        )

    if actions:
        lines.append("")
        lines.append("response actions:")
        for action in actions:
            detail = f" — {action.detail}" if action.detail else ""
            lines.append(
                f"  >>> [{action.time_hours:9.3f} h] {action.view:<10} "
                f"{action.action} (rule {action.rule_index}, "
                f"chart {action.chart}){detail}"
            )

    snapshot = report.snapshot
    if snapshot is not None:
        lines.append("")
        lines.append(
            f"on-alarm diagnosis (t = {_format_hours(report.snapshot_time_hours)}): "
            f"{snapshot.classification.value}"
        )
        for view_name, omeda in (
            ("controller", snapshot.controller_omeda),
            ("process", snapshot.process_omeda),
        ):
            if omeda is None:
                continue
            lines.append("")
            lines.append(
                render_bar_chart(
                    omeda.variable_names,
                    omeda.contributions,
                    title=f"oMEDA snapshot — {view_name} view",
                    width=min(width - 24, 48),
                    highlight_top=top_variables,
                )
            )
    return "\n".join(lines)
