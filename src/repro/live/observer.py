"""The step-tap bridge: feed a simulating run into a :class:`LiveMonitor`.

:class:`LiveRunObserver` implements the
:class:`~repro.process.interfaces.StepObserver` protocol: attached to a
:meth:`~repro.process.simulator.ClosedLoopSimulator.run` call, it forwards
every recorded sample's network-channel observations (both data views, after
the attack/injection stack) to the live monitor, and relays the monitor's
early-stop decision back to the simulator.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.common.exceptions import DataShapeError
from repro.live.monitor import LiveMonitor, LiveRunReport
from repro.process.interfaces import StepObserver, StepSample

__all__ = ["LiveRunObserver"]


class LiveRunObserver(StepObserver):
    """Couples one :class:`LiveMonitor` to one simulating run."""

    def __init__(self, monitor: LiveMonitor):
        self.monitor = monitor
        self._stop_reason: Optional[str] = None

    # ------------------------------------------------------------------
    def on_run_start(
        self,
        variable_names: Sequence[str],
        config,
        metadata: Dict[str, object],
    ) -> None:
        """Check the run's variables match the calibrated models'."""
        expected = self.monitor.analyzer.controller_monitor.variable_names
        if tuple(variable_names) != tuple(expected):
            raise DataShapeError(
                "the run's variables do not match the live monitor's "
                "calibration variables"
            )

    def on_sample(self, sample: StepSample) -> bool:
        """Feed one sample; request a stop when the policy allows one."""
        self.monitor.observe(
            sample.controller_values, sample.process_values, sample.time_hours
        )
        if self.monitor.should_stop():
            self.monitor.mark_stopped(sample.index, sample.time_hours)
            self._stop_reason = (
                "live monitor confirmed detection at sample "
                f"{self.monitor.detection_index} "
                f"(t = {self.monitor.detection_time_hours:.3f} h); "
                f"stopped after the {self.monitor.policy.grace_samples}-sample "
                "grace window"
            )
            return True
        return False

    @property
    def stop_reason(self) -> Optional[str]:
        """Why the observer stopped the run (``None`` if it did not)."""
        return self._stop_reason

    def report(self) -> LiveRunReport:
        """The monitor's run report."""
        return self.monitor.report()
