"""The live monitor: sample-by-sample MSPC scoring during a run.

:class:`LiveMonitor` is the online counterpart of
:class:`~repro.anomaly.diagnosis.DualLevelAnalyzer`: it consumes one
(controller-view, process-view) observation pair per simulated sample — fed
by the :class:`~repro.live.observer.LiveRunObserver` step tap while the run
is still simulating — and maintains, per view, the D/Q statistics, the
alarm state machine and the detection bookkeeping of the paper's
consecutive-violation rule.

Equivalence with the batch path is the design anchor: with early stopping
disabled, the accumulated statistic values are **bitwise-identical** to
:meth:`repro.mspc.model.MSPCMonitor.monitor` on the completed run (the PCA
projection is shape-stable, see :meth:`repro.mspc.pca.PCAModel.transform`),
detections fire at exactly the batch detection indices, and the on-alarm
oMEDA snapshot equals
:meth:`~repro.anomaly.diagnosis.DualLevelAnalyzer.analyze` on the same data
window — because diagnosis and classification literally run through
:meth:`~repro.anomaly.diagnosis.DualLevelAnalyzer.assemble`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.anomaly.diagnosis import DiagnosisSummary, DualLevelAnalyzer, DualLevelDiagnosis
from repro.common.config import EarlyStopPolicy
from repro.common.exceptions import NotFittedError
from repro.datasets.dataset import ProcessDataset
from repro.live.alarms import AlarmEvent, AlarmManager, ViolationStreak
from repro.mspc.charts import ControlChart
from repro.mspc.model import MonitoringResult, MSPCMonitor

__all__ = ["LiveViewMonitor", "LiveMonitor", "LiveRunReport"]


class _DetectionRule:
    """First firing of the consecutive-violation rule, optionally offset.

    Mirrors :meth:`repro.mspc.charts.ControlChart.detection_index`: only
    samples at or after ``start_time`` count (all of them when it is
    ``None``), and the first qualifying violation run's
    ``consecutive``-th sample is recorded.  The counting itself lives in
    :class:`~repro.live.alarms.ViolationStreak`, shared with the alarm
    state machine.
    """

    def __init__(self, consecutive: int, start_time: Optional[float] = None):
        self.start_time = None if start_time is None else float(start_time)
        self._streak = ViolationStreak(consecutive)
        self.fire_index: Optional[int] = None
        self.fire_time: Optional[float] = None

    def update(self, index: int, time_hours: float, violating: bool) -> bool:
        """Fold one sample in; return whether the rule fires at it."""
        if self.start_time is not None and time_hours < self.start_time:
            return False
        if self._streak.update(violating) and self.fire_index is None:
            self.fire_index = int(index)
            self.fire_time = float(time_hours)
            return True
        return False


class LiveViewMonitor:
    """Incremental D/Q scoring + alarms for one data view.

    Not built on :class:`~repro.anomaly.detector.StreamingDetector`: the
    live monitor additionally needs the onset-restricted detection
    bookkeeping of the batch path (false alarms vs. counted detections)
    and raise/*clear* alarm transitions, neither of which the one-shot
    streaming detector models.  All three implementations of the
    consecutive-violation rule are pinned against each other by the
    equivalence tests.

    Parameters
    ----------
    monitor:
        The view's fitted :class:`MSPCMonitor`.
    view:
        ``"controller"`` or ``"process"`` (reporting only).
    anomaly_start_hour:
        Known anomaly onset; detections before it are booked as false
        alarms, exactly like the batch
        :meth:`~repro.anomaly.diagnosis.DualLevelAnalyzer.analyze`.
    """

    def __init__(
        self,
        monitor: MSPCMonitor,
        view: str = "controller",
        anomaly_start_hour: Optional[float] = None,
    ):
        if not monitor.is_fitted:
            raise NotFittedError("the MSPCMonitor must be fitted before live use")
        self.monitor = monitor
        self.view = str(view)
        self.anomaly_start_hour = (
            None if anomaly_start_hour is None else float(anomaly_start_hour)
        )
        config = monitor.config
        self.d_limit = monitor.t2_limits.at(config.detection_confidence)
        self.q_limit = monitor.spe_limits.at(config.detection_confidence)
        self.consecutive = config.consecutive_violations
        self.reset()

    def reset(self) -> None:
        """Forget all streamed samples, detections and alarms."""
        self._rows: List[np.ndarray] = []
        self._times: List[float] = []
        self._t2: List[float] = []
        self._spe: List[float] = []
        self.alarms = AlarmManager(self.consecutive)
        # Unrestricted rules reproduce detection_time_after(None) (false
        # alarms); the onset-restricted ones reproduce
        # detection_time_after(anomaly_start_hour) — the detection the
        # run-length metrics count.  Without a known onset the two coincide.
        self._any_d = _DetectionRule(self.consecutive)
        self._any_q = _DetectionRule(self.consecutive)
        if self.anomaly_start_hour is None:
            self._after_d, self._after_q = self._any_d, self._any_q
        else:
            self._after_d = _DetectionRule(self.consecutive, self.anomaly_start_hour)
            self._after_q = _DetectionRule(self.consecutive, self.anomaly_start_hour)

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of samples streamed so far."""
        return len(self._times)

    @property
    def statistics(self) -> Dict[str, np.ndarray]:
        """Accumulated D/Q values and timestamps."""
        return {
            "D": np.array(self._t2),
            "Q": np.array(self._spe),
            "time": np.array(self._times),
        }

    @property
    def in_control(self) -> bool:
        """Whether the latest sample sits at or under both detection limits.

        O(1) — read every sample by the response subsystem's recovery
        tracker, so it must not rebuild the statistics arrays.  ``True``
        before any sample has been streamed.  The comparison uses the
        *current* ``d_limit`` / ``q_limit``, so escalated limits are
        honoured.
        """
        if not self._times:
            return True
        return self._t2[-1] <= self.d_limit and self._spe[-1] <= self.q_limit

    def _first_fire(self, rules) -> Tuple[Optional[int], Optional[float]]:
        fired = [
            (rule.fire_index, rule.fire_time)
            for rule in rules
            if rule.fire_index is not None
        ]
        if not fired:
            return None, None
        return min(fired)

    @property
    def detection_index(self) -> Optional[int]:
        """Sample index of the first detection at/after the anomaly onset."""
        return self._first_fire((self._after_d, self._after_q))[0]

    @property
    def detection_time_hours(self) -> Optional[float]:
        """Time of the first detection at/after the anomaly onset."""
        return self._first_fire((self._after_d, self._after_q))[1]

    @property
    def false_alarm_time_hours(self) -> Optional[float]:
        """First detection strictly before the anomaly onset (if any)."""
        if self.anomaly_start_hour is None:
            return None
        _, time = self._first_fire((self._any_d, self._any_q))
        if time is not None and time < self.anomaly_start_hour:
            return time
        return None

    # ------------------------------------------------------------------
    def observe(self, values, time_hours: float) -> Optional[AlarmEvent]:
        """Score one observation; return the alarm transition, if any."""
        t2_values, spe_values = self.monitor.statistics(
            np.asarray(values, dtype=float)
        )
        return self.ingest(
            values, time_hours, float(t2_values[0]), float(spe_values[0])
        )

    def ingest(
        self, values, time_hours: float, t2: float, spe: float
    ) -> Optional[AlarmEvent]:
        """Fold one already-scored observation into the monitor's state.

        The bookkeeping half of :meth:`observe`, split out so callers that
        score observations in bulk — the streaming gateway packs due samples
        from many concurrent streams into one ``(B, M)`` matrix and calls
        :meth:`MSPCMonitor.statistics` once — drive exactly the same state
        machines with the precomputed per-row values.  Because the PCA
        projection is shape-stable (see :meth:`repro.mspc.pca.PCAModel.
        transform`), a batched row's ``t2``/``spe`` equals the values
        :meth:`observe` would have computed, so the two entry points are
        interchangeable bit for bit.
        """
        t2 = float(t2)
        spe = float(spe)
        index = len(self._times)
        time_value = float(time_hours)

        self._rows.append(np.asarray(values, dtype=float).ravel())
        self._times.append(time_value)
        self._t2.append(t2)
        self._spe.append(spe)

        d_violating = t2 > self.d_limit
        q_violating = spe > self.q_limit
        self._any_d.update(index, time_value, d_violating)
        self._any_q.update(index, time_value, q_violating)
        if self._after_d is not self._any_d:
            self._after_d.update(index, time_value, d_violating)
            self._after_q.update(index, time_value, q_violating)
        return self.alarms.update(
            index, time_value, t2, self.d_limit, spe, self.q_limit
        )

    # ------------------------------------------------------------------
    def dataset(self) -> ProcessDataset:
        """The streamed observations as a dataset (for oMEDA diagnosis)."""
        return ProcessDataset(
            np.vstack(self._rows),
            list(self.monitor.variable_names),
            np.array(self._times),
            {"view": self.view},
        )

    def monitoring_result(self) -> MonitoringResult:
        """The accumulated statistics as a batch :class:`MonitoringResult`.

        No re-scoring happens: the charts are built from the values already
        accumulated sample by sample, so everything downstream (detection
        indices, violation groups, oMEDA) sees exactly the live statistics.
        """
        timestamps = np.array(self._times)
        config = self.monitor.config
        return MonitoringResult(
            d_chart=ControlChart(
                "D", np.array(self._t2), self.monitor.t2_limits, timestamps
            ),
            q_chart=ControlChart(
                "Q", np.array(self._spe), self.monitor.spe_limits, timestamps
            ),
            detection_confidence=config.detection_confidence,
            consecutive_violations=config.consecutive_violations,
        )


@dataclass
class LiveRunReport:
    """What one live-monitored run produced, beyond the simulation data.

    Attributes
    ----------
    n_samples:
        Samples streamed (equals the run length in samples, truncated runs
        included).
    detection_index / detection_time_hours:
        First confirmed detection at/after the anomaly onset, across both
        views (``None`` when nothing was detected).
    detection_latency_hours:
        ``detection_time - anomaly_start`` (the run length the ARL tables
        aggregate); ``None`` without a known onset or a detection.
    false_alarm_time_hours:
        First detection strictly before the onset, across both views.
    snapshot / snapshot_time_hours / time_to_diagnosis_hours:
        The on-alarm oMEDA diagnosis summary taken the moment the detection
        was confirmed, its timestamp, and its distance from the onset.
    diagnosis:
        The final diagnosis summary over every streamed sample (equals the
        post-hoc verdict of the truncated window).
    alarm_events:
        Per-view alarm transitions (``"controller"`` / ``"process"``).
    stopped_early / stop_index / stop_time_hours:
        Whether, where and when the early-stop policy truncated the run.
    """

    n_samples: int
    detection_index: Optional[int]
    detection_time_hours: Optional[float]
    detection_latency_hours: Optional[float]
    false_alarm_time_hours: Optional[float]
    snapshot: Optional[DiagnosisSummary]
    snapshot_time_hours: Optional[float]
    time_to_diagnosis_hours: Optional[float]
    diagnosis: Optional[DiagnosisSummary]
    alarm_events: Dict[str, Tuple[AlarmEvent, ...]] = field(default_factory=dict)
    stopped_early: bool = False
    stop_index: Optional[int] = None
    stop_time_hours: Optional[float] = None

    @property
    def detected(self) -> bool:
        """Whether a detection was confirmed at/after the anomaly onset."""
        return self.detection_index is not None

    def to_mapping(self) -> Dict[str, Any]:
        """A plain, JSON-safe mapping of this report.

        Every key is always present (``None`` where the field is unset), so
        two reports that compare equal serialize to the same bytes under
        ``json.dumps(..., sort_keys=True)``.  Floats survive the wire
        bit-for-bit via their shortest round-trip repr.
        """
        return {
            "n_samples": int(self.n_samples),
            "detection_index": (
                None if self.detection_index is None else int(self.detection_index)
            ),
            "detection_time_hours": _opt_float(self.detection_time_hours),
            "detection_latency_hours": _opt_float(self.detection_latency_hours),
            "false_alarm_time_hours": _opt_float(self.false_alarm_time_hours),
            "snapshot": None if self.snapshot is None else self.snapshot.to_mapping(),
            "snapshot_time_hours": _opt_float(self.snapshot_time_hours),
            "time_to_diagnosis_hours": _opt_float(self.time_to_diagnosis_hours),
            "diagnosis": (
                None if self.diagnosis is None else self.diagnosis.to_mapping()
            ),
            "alarm_events": {
                name: [event.to_mapping() for event in events]
                for name, events in sorted(self.alarm_events.items())
            },
            "stopped_early": bool(self.stopped_early),
            "stop_index": None if self.stop_index is None else int(self.stop_index),
            "stop_time_hours": _opt_float(self.stop_time_hours),
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "LiveRunReport":
        """Rebuild a report from its :meth:`to_mapping` form."""
        snapshot = mapping.get("snapshot")
        diagnosis = mapping.get("diagnosis")
        return cls(
            n_samples=int(mapping["n_samples"]),
            detection_index=(
                None
                if mapping["detection_index"] is None
                else int(mapping["detection_index"])
            ),
            detection_time_hours=_opt_float(mapping["detection_time_hours"]),
            detection_latency_hours=_opt_float(mapping["detection_latency_hours"]),
            false_alarm_time_hours=_opt_float(mapping["false_alarm_time_hours"]),
            snapshot=(
                None if snapshot is None else DiagnosisSummary.from_mapping(snapshot)
            ),
            snapshot_time_hours=_opt_float(mapping["snapshot_time_hours"]),
            time_to_diagnosis_hours=_opt_float(mapping["time_to_diagnosis_hours"]),
            diagnosis=(
                None if diagnosis is None else DiagnosisSummary.from_mapping(diagnosis)
            ),
            alarm_events={
                str(name): tuple(AlarmEvent.from_mapping(event) for event in events)
                for name, events in mapping["alarm_events"].items()
            },
            stopped_early=bool(mapping["stopped_early"]),
            stop_index=(
                None if mapping["stop_index"] is None else int(mapping["stop_index"])
            ),
            stop_time_hours=_opt_float(mapping["stop_time_hours"]),
        )


def _opt_float(value: Optional[float]) -> Optional[float]:
    return None if value is None else float(value)


class LiveMonitor:
    """Dual-view online monitoring with alarms, diagnosis and early stop.

    Parameters
    ----------
    analyzer:
        A fitted :class:`DualLevelAnalyzer` (both views calibrated) — the
        same object the batch evaluation uses, so live and post-hoc verdicts
        share models, limits and thresholds.
    anomaly_start_hour:
        Known anomaly onset of the monitored run (``None`` for normal runs
        or genuinely blind deployment).
    policy:
        Optional :class:`~repro.common.config.EarlyStopPolicy`;
        :meth:`should_stop` never returns ``True`` without one.
    diagnosis_group_size:
        Observations handed to oMEDA (the paper uses 3).
    """

    def __init__(
        self,
        analyzer: DualLevelAnalyzer,
        anomaly_start_hour: Optional[float] = None,
        policy: Optional[EarlyStopPolicy] = None,
        diagnosis_group_size: int = 3,
    ):
        if not analyzer.is_fitted:
            raise NotFittedError("DualLevelAnalyzer must be fitted before live use")
        self.analyzer = analyzer
        self.anomaly_start_hour = (
            None if anomaly_start_hour is None else float(anomaly_start_hour)
        )
        self.policy = policy
        self.diagnosis_group_size = int(diagnosis_group_size)
        self.reset()

    def reset(self) -> None:
        """Forget all streamed samples, alarms and snapshots."""
        self.controller_view = LiveViewMonitor(
            self.analyzer.controller_monitor, "controller", self.anomaly_start_hour
        )
        self.process_view = LiveViewMonitor(
            self.analyzer.process_monitor, "process", self.anomaly_start_hour
        )
        self._snapshot: Optional[DualLevelDiagnosis] = None
        self._snapshot_time: Optional[float] = None
        self._stop_index: Optional[int] = None
        self._stop_time: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def views(self) -> Dict[str, LiveViewMonitor]:
        """Both view monitors, keyed like the batch data views."""
        return {"controller": self.controller_view, "process": self.process_view}

    @property
    def n_samples(self) -> int:
        """Samples streamed so far."""
        return self.controller_view.n_samples

    def _earliest(self) -> Tuple[Optional[int], Optional[float]]:
        candidates = []
        for view in (self.controller_view, self.process_view):
            index = view.detection_index
            if index is not None:
                candidates.append((index, view.detection_time_hours))
        if not candidates:
            return None, None
        return min(candidates)

    @property
    def detection_index(self) -> Optional[int]:
        """Sample index of the earliest confirmed detection across views."""
        return self._earliest()[0]

    @property
    def detection_time_hours(self) -> Optional[float]:
        """Time of the earliest confirmed detection across views.

        Matches the batch
        :attr:`~repro.anomaly.diagnosis.DualLevelDiagnosis.detection_time_hours`
        on the same window: the minimum of the per-view detections at/after
        the anomaly onset.
        """
        return self._earliest()[1]

    @property
    def detected(self) -> bool:
        """Whether a detection has been confirmed."""
        return self.detection_index is not None

    @property
    def detection_latency_hours(self) -> Optional[float]:
        """Time from anomaly onset to the confirmed detection."""
        time = self.detection_time_hours
        if time is None or self.anomaly_start_hour is None:
            return None
        return time - self.anomaly_start_hour

    @property
    def false_alarm_time_hours(self) -> Optional[float]:
        """Earliest pre-onset detection across views (``None`` when clean)."""
        times = [
            view.false_alarm_time_hours
            for view in (self.controller_view, self.process_view)
        ]
        times = [time for time in times if time is not None]
        return min(times) if times else None

    @property
    def snapshot(self) -> Optional[DualLevelDiagnosis]:
        """The on-alarm diagnosis taken when the detection was confirmed."""
        return self._snapshot

    @property
    def stopped_early(self) -> bool:
        """Whether :meth:`mark_stopped` recorded an early termination."""
        return self._stop_index is not None

    # ------------------------------------------------------------------
    def observe(
        self, controller_values, process_values, time_hours: float
    ) -> List[AlarmEvent]:
        """Feed one sample of both views; return the alarm transitions."""
        events = []
        for view, values in (
            (self.controller_view, controller_values),
            (self.process_view, process_values),
        ):
            event = view.observe(values, time_hours)
            if event is not None:
                events.append(event)
        self._after_sample(time_hours)
        return events

    def ingest_scored(
        self,
        controller_values,
        process_values,
        time_hours: float,
        controller_stats: Tuple[float, float],
        process_stats: Tuple[float, float],
    ) -> List[AlarmEvent]:
        """Feed one already-scored sample of both views.

        ``controller_stats`` / ``process_stats`` are the ``(t2, spe)`` pairs
        for the sample, typically cut out of a cross-stream batched
        :meth:`MSPCMonitor.statistics` call.  Alarm state machines, detection
        bookkeeping and the on-alarm snapshot run through exactly the same
        code as :meth:`observe`, so a gateway stream fed through here is
        bitwise-identical to an in-process monitor fed through
        :meth:`observe`.
        """
        events = []
        for view, values, stats in (
            (self.controller_view, controller_values, controller_stats),
            (self.process_view, process_values, process_stats),
        ):
            event = view.ingest(values, time_hours, stats[0], stats[1])
            if event is not None:
                events.append(event)
        self._after_sample(time_hours)
        return events

    def _after_sample(self, time_hours: float) -> None:
        if self._snapshot is None and self.detected:
            # The on-alarm snapshot: diagnose the window available the
            # moment the detection is confirmed, before the run moves on.
            self._snapshot = self.diagnose()
            self._snapshot_time = float(time_hours)

    def diagnose(self) -> DualLevelDiagnosis:
        """Dual-level diagnosis of everything streamed so far.

        Runs :meth:`DualLevelAnalyzer.assemble` on the accumulated charts
        and observation buffers, so the result is exactly what
        :meth:`DualLevelAnalyzer.analyze` would produce on the same window.
        """
        return self.analyzer.assemble(
            self.controller_view.dataset(),
            self.process_view.dataset(),
            self.controller_view.monitoring_result(),
            self.process_view.monitoring_result(),
            diagnosis_group_size=self.diagnosis_group_size,
            anomaly_start_hour=self.anomaly_start_hour,
        )

    # ------------------------------------------------------------------
    def should_stop(self) -> bool:
        """Whether the early-stop policy allows terminating the run now."""
        if self.policy is None:
            return False
        detection = self.detection_index
        if detection is None:
            return False
        last_index = self.n_samples - 1
        if last_index < detection + self.policy.grace_samples:
            return False
        return self.n_samples >= self.policy.min_samples

    def mark_stopped(self, index: int, time_hours: float) -> None:
        """Record that the run was terminated after sample ``index``."""
        self._stop_index = int(index)
        self._stop_time = float(time_hours)

    # ------------------------------------------------------------------
    def report(self) -> LiveRunReport:
        """Summarize the run: detections, alarms, snapshots, metrics."""
        snapshot_summary = (
            self._snapshot.summarize() if self._snapshot is not None else None
        )
        time_to_diagnosis = None
        if self._snapshot_time is not None and self.anomaly_start_hour is not None:
            time_to_diagnosis = self._snapshot_time - self.anomaly_start_hour
        diagnosis = self.diagnose().summarize() if self.n_samples else None
        return LiveRunReport(
            n_samples=self.n_samples,
            detection_index=self.detection_index,
            detection_time_hours=self.detection_time_hours,
            detection_latency_hours=self.detection_latency_hours,
            false_alarm_time_hours=self.false_alarm_time_hours,
            snapshot=snapshot_summary,
            snapshot_time_hours=self._snapshot_time,
            time_to_diagnosis_hours=time_to_diagnosis,
            diagnosis=diagnosis,
            alarm_events={
                name: view.alarms.events for name, view in self.views.items()
            },
            stopped_early=self.stopped_early,
            stop_index=self._stop_index,
            stop_time_hours=self._stop_time,
        )
