"""``repro.live`` — online co-simulation monitoring.

Everything in this repository up to this subsystem simulates a full run,
caches it and scores it post-hoc.  ``repro.live`` couples the simulator and
the detector **sample by sample** instead, the way the paper's monitor runs
next to the historian:

* :class:`~repro.live.monitor.LiveMonitor` — incremental dual-view T²/SPE
  scoring with an alarm state machine
  (:class:`~repro.live.alarms.AlarmManager`), on-alarm oMEDA snapshots and
  latency / time-to-diagnosis metrics.  With early stopping disabled its
  scores and detections are bitwise-identical to the batch
  :meth:`~repro.mspc.model.MSPCMonitor.monitor` path.
* :class:`~repro.live.observer.LiveRunObserver` — the
  :class:`~repro.process.interfaces.StepObserver` bridge feeding a
  simulating run into a live monitor.
* :class:`~repro.common.config.EarlyStopPolicy` /
  :func:`~repro.live.campaign.live_scenario_specs` — terminate runs a grace
  window after a confirmed detection, wired through
  :class:`~repro.experiments.parallel.RunSpec` cache keys so truncated and
  full results never mix.
* :func:`~repro.live.dashboard.render_live_dashboard` — an ASCII dashboard
  of charts, alarms and diagnoses (``scripts/run_live.py``).

Spec-driven entry points live in :mod:`repro.api` (the ``[live]`` section
and :meth:`~repro.api.session.Session.run_live`).
"""

from repro.common.config import EarlyStopPolicy, LiveConfig
from repro.live.alarms import AlarmEvent, AlarmManager, AlarmState
from repro.live.campaign import live_context_token, live_scenario_specs
from repro.live.dashboard import render_live_dashboard
from repro.live.monitor import LiveMonitor, LiveRunReport, LiveViewMonitor
from repro.live.observer import LiveRunObserver

__all__ = [
    "AlarmEvent",
    "AlarmManager",
    "AlarmState",
    "EarlyStopPolicy",
    "LiveConfig",
    "LiveMonitor",
    "LiveRunReport",
    "LiveViewMonitor",
    "LiveRunObserver",
    "live_context_token",
    "live_scenario_specs",
    "render_live_dashboard",
]
