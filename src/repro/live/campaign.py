"""Live campaigns: early-stopping run specs and calibration identity.

The glue between :mod:`repro.live` and the campaign engine: a live campaign
is an ordinary campaign whose anomalous :class:`~repro.experiments.parallel.
RunSpec` records carry an :class:`~repro.common.config.EarlyStopPolicy` plus
a *context token* identifying the calibration the live models were fitted
on.  The token is part of each run's cache key — a truncated result is only
reusable if the monitor that truncated it was fitted on the same
calibration campaign with the same MSPC settings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from typing import List, Optional

from repro._version import __version__
from repro.common.config import EarlyStopPolicy, ExperimentConfig
from repro.experiments.parallel import RunSpec, scenario_specs
from repro.experiments.scenarios import Scenario

__all__ = ["live_context_token", "live_scenario_specs"]


def live_context_token(config: ExperimentConfig) -> str:
    """A stable digest of the calibration identity behind the live models.

    Covers everything that determines the fitted monitors — the number of
    calibration runs, the campaign root seed (per-run calibration seeds
    derive from it), the simulation settings and the MSPC settings — plus
    the code version, mirroring :meth:`RunSpec.cache_token`.
    """
    payload = {
        "code_version": __version__,
        "n_calibration_runs": int(config.n_calibration_runs),
        "seed": int(config.seed),
        "simulation": config.simulation.to_mapping(),
        "mspc": config.mspc.to_mapping(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def live_scenario_specs(
    config: ExperimentConfig,
    scenario: Scenario,
    policy: Optional[EarlyStopPolicy],
    n_runs: Optional[int] = None,
) -> List[RunSpec]:
    """Specs of one scenario's runs, with live early stopping attached.

    Non-anomalous scenarios (and a ``None`` policy) produce the plain
    full-horizon specs: a run without an anomaly has no detection to
    confirm, and truncating it would silently change the negative-control
    statistics.
    """
    specs = scenario_specs(config, scenario, n_runs)
    if policy is None or not scenario.is_anomalous:
        return specs
    token = live_context_token(config)
    return [
        replace(spec, early_stop=policy, live_token=token) for spec in specs
    ]
