"""repro — reproduction of Iturbe et al., "On the Feasibility of Distinguishing
Between Process Disturbances and Intrusions in Process Control Systems Using
Multivariate Statistical Process Control" (DSN 2016).

The package is organized in layered subpackages:

``repro.common``
    Shared exceptions, configuration objects and random-stream helpers.
``repro.datasets``
    Labelled N x M process datasets, I/O and synthetic generators.
``repro.process``
    Generic process-simulation scaffolding: variables, noise, disturbances,
    safety interlocks and data recording.
``repro.te``
    The Tennessee-Eastman plant model (41 XMEAS, 12 XMV, 20 IDV).
``repro.control``
    PI/PID controllers and the Ricker-style decentralized TE control layer.
``repro.network``
    Channels between controllers and the plant, the man-in-the-middle
    adversary, integrity and DoS attacks, and dual-view recording.
``repro.mspc``
    PCA-based Multivariate Statistical Process Control: T^2 / SPE statistics,
    control limits, detection rules, ARL and oMEDA diagnosis.
``repro.anomaly``
    Streaming anomaly detection and dual-level (controller vs. process)
    diagnosis that distinguishes disturbances from intrusions.
``repro.experiments``
    Calibration campaigns, the scenario registry and composable anomaly
    DSL (the paper's five scenarios are pre-registered), the parallel
    campaign engine, the streaming analysis stage and the figure/table
    generators.
``repro.plotting``
    ASCII rendering and CSV export of control charts and oMEDA bar charts.
``repro.live``
    Online co-simulation monitoring: sample-by-sample MSPC scoring while a
    run simulates, alarm management, on-alarm oMEDA snapshots and
    early-stop campaigns (``scripts/run_live.py``, ``[live]`` spec
    section).
``repro.api``
    The declarative campaign facade: ``CampaignSpec`` (TOML/JSON) plus
    ``load_spec`` / ``run`` / ``analyze`` / ``Session``, and the
    distributed entry points ``submit_spec`` / ``poll`` / ``fetch_tables``.
``repro.service``
    The distributed campaign service: coordinator (chunk leases, cache-
    verified acks, reduction), worker protocol, REST control surface and
    HTTP client (``scripts/run_campaign.py --serve/--worker/--submit``,
    ``[service]`` spec section).
``repro.gateway``
    The streaming detection gateway: a multi-tenant monitor pool scoring
    thousands of concurrent plant streams with cross-stream batched
    T^2/SPE, newline-JSON TCP ingest + HTTP/SSE operations surface with
    Prometheus metrics, and the ``StreamClient`` facade
    (``scripts/run_gateway.py --serve/--feed``, ``[gateway]`` spec
    section).
"""

from repro._version import __version__
from repro.common.exceptions import (
    ReproError,
    ConfigurationError,
    SimulationError,
    ProcessShutdown,
    NotFittedError,
    DataShapeError,
    ServiceError,
    ServiceUnavailableError,
    CampaignIncompleteError,
    JournalError,
    JournalCorruptedError,
    RetryExhaustedError,
    FaultInjectionError,
    InjectedFault,
    GatewayError,
    GatewayUnavailableError,
    StreamRejectedError,
    UnknownStreamError,
    SampleRejectedError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProcessShutdown",
    "NotFittedError",
    "DataShapeError",
    "ServiceError",
    "ServiceUnavailableError",
    "CampaignIncompleteError",
    "JournalError",
    "JournalCorruptedError",
    "RetryExhaustedError",
    "FaultInjectionError",
    "InjectedFault",
    "GatewayError",
    "GatewayUnavailableError",
    "StreamRejectedError",
    "UnknownStreamError",
    "SampleRejectedError",
]
